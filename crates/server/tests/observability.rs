//! End-to-end observability tests: METRICS exposition over the wire, the
//! fingerprint-0 observer wildcard, fixed-seed determinism, shard
//! invariance of output-derived series, and the configured-off path.

use std::sync::Arc;

use sequin_engine::{EngineConfig, Strategy};
use sequin_netsim::delay_shuffle;
use sequin_obs::ObsConfig;
use sequin_server::{Client, CoreConfig, EngineCore, MetricsFormat, Server, ServerConfig};
use sequin_types::{Duration, StreamItem, TypeRegistry};
use sequin_workload::{Synthetic, SyntheticConfig};

const Q01: &str = "PATTERN SEQ(T0 a, T1 b) WITHIN 20";

fn workload(n: usize, seed: u64) -> (Arc<TypeRegistry>, Vec<StreamItem>) {
    let synth = Synthetic::new(SyntheticConfig::default());
    let history = synth.generate(n, seed);
    let stream = delay_shuffle(&history, 0.3, 20, seed ^ 0x5eed);
    (synth.registry().clone(), stream)
}

fn core_config(reg: &Arc<TypeRegistry>) -> CoreConfig {
    let engine = EngineConfig::with_k(Duration::new(40));
    CoreConfig::new(reg.clone(), Strategy::Native, engine)
}

/// Runs the fixed workload through an in-process core with the given
/// sharding/observability settings and a fixed chunk size, returning the
/// drained core for snapshot/trace inspection.
fn run_core(shards: usize, obs: ObsConfig) -> EngineCore {
    let (reg, stream) = workload(600, 11);
    let mut cfg = core_config(&reg);
    cfg.shards = shards;
    cfg.obs = obs;
    let mut core = EngineCore::new(cfg);
    core.subscribe(Q01).unwrap();
    for chunk in stream.chunks(64) {
        core.ingest_batch(chunk);
    }
    core.finish();
    core
}

/// Checks that every non-comment line of a Prometheus rendering has the
/// `name{labels} value` shape with a parseable numeric value.
fn assert_prometheus_parses(prom: &str) {
    for line in prom.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("no value separator in `{line}`"));
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable value in `{line}`"
        );
        let name = &series[..series.find('{').unwrap_or(series.len())];
        assert!(
            !name.is_empty() && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "bad series name in `{line}`"
        );
        if series.contains('{') {
            assert!(series.ends_with('}'), "unterminated labels in `{line}`");
        }
    }
}

#[test]
fn loopback_metrics_expose_histograms_gauges_and_traces() {
    let (reg, stream) = workload(800, 7);
    let mut server = Server::start(ServerConfig::new(core_config(&reg))).unwrap();
    let addr = server.listen("127.0.0.1:0").unwrap().to_string();

    let mut feeder = Client::connect(&addr).unwrap();
    feeder.hello(reg.fingerprint(), "obs-feeder").unwrap();
    feeder.subscribe(Q01).unwrap();
    for item in &stream {
        feeder.send_item(item).unwrap();
    }
    feeder.drain().unwrap();

    // a monitoring-only client: fingerprint 0 is the observer wildcard,
    // so it needs no schema knowledge to scrape (its METRICS round-trips
    // through the engine queue, i.e. it observes the drain above)
    let mut watcher = Client::connect(&addr).unwrap();
    watcher.hello(0, "obs-watcher").unwrap();

    let prom = watcher.metrics(MetricsFormat::Prometheus).unwrap();
    for needle in [
        "# TYPE sequin_detection_latency histogram",
        "sequin_detection_latency_bucket{",
        "sequin_detection_latency_sum{",
        "sequin_deferral_time_bucket{",
        "sequin_watermark_lag{",
        "sequin_watermark{",
        "sequin_stream_clock{",
        "sequin_outputs_emitted{",
        "sequin_engine_insertions{",
        "sequin_engine_purged_total",
        "sequin_engine_state_size{",
        "sequin_purge_reclaimed_bytes{",
        "sequin_ingest_position",
        "sequin_trace_spans_recorded",
        "sequin_server_queue_depth",
        "sequin_server_events_ingested",
    ] {
        assert!(prom.contains(needle), "missing `{needle}` in:\n{prom}");
    }
    assert_prometheus_parses(&prom);

    let json = watcher.metrics(MetricsFormat::Json).unwrap();
    assert!(json.contains("\"sequin_detection_latency\""), "{json}");
    assert!(json.contains("\"histogram\""), "{json}");
    assert!(json.contains("\"sequin_server_queue_depth\""), "{json}");

    let trace = watcher.metrics(MetricsFormat::TraceJson).unwrap();
    assert!(trace.contains("\"spans\":["), "{trace}");
    for kind in ["ingest", "route", "stack_insert", "construct", "emit"] {
        assert!(trace.contains(&format!("\"kind\":\"{kind}\"")), "{trace}");
    }
    // emit spans carry event-id provenance
    assert!(trace.contains("\"events\":["), "{trace}");

    watcher.bye();
    feeder.bye();
    server.shutdown();
}

#[test]
fn observer_wildcard_skips_schema_negotiation_but_mismatch_is_refused() {
    let (reg, _) = workload(10, 1);
    let mut server = Server::start(ServerConfig::new(core_config(&reg))).unwrap();
    let addr = server.listen("127.0.0.1:0").unwrap().to_string();

    // a genuinely wrong (nonzero) fingerprint is still a schema mismatch
    let mut wrong = reg.fingerprint() ^ 0xdead_beef;
    if wrong == 0 {
        wrong = 1;
    }
    let mut bad = Client::connect(&addr).unwrap();
    assert!(bad.hello(wrong, "imposter").is_err());

    let mut obs = Client::connect(&addr).unwrap();
    obs.hello(0, "watcher").unwrap();
    let body = obs.metrics(MetricsFormat::Json).unwrap();
    assert!(body.contains("sequin_ingest_position"), "{body}");
    obs.bye();
    server.shutdown();
}

#[test]
fn fixed_seed_snapshots_are_byte_identical() {
    let a = run_core(1, ObsConfig::default());
    let b = run_core(1, ObsConfig::default());
    assert_eq!(
        a.metrics_snapshot(None).to_prometheus(),
        b.metrics_snapshot(None).to_prometheus()
    );
    assert_eq!(
        a.metrics_snapshot(None).to_json(),
        b.metrics_snapshot(None).to_json()
    );
    assert_eq!(a.trace_json(), b.trace_json());
}

/// The series derived purely from the output stream (latency histograms,
/// emit counts) and from the lockstep watermark must not depend on how
/// many worker shards evaluated the query, because sharded output is
/// byte-identical to single-shard output. Operator counters (insertions,
/// dfs steps, purge runs) legitimately differ per shard layout and are
/// not compared.
#[test]
fn output_derived_series_are_shard_invariant() {
    let shard_free = |prom: &str| -> String {
        prom.lines()
            .filter(|l| {
                [
                    "sequin_detection_latency",
                    "sequin_deferral_time",
                    "sequin_outputs_emitted",
                    "sequin_outputs_retracted",
                    "sequin_stream_clock",
                    "sequin_watermark",
                ]
                .iter()
                .any(|p| l.contains(p))
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    let one = shard_free(
        &run_core(1, ObsConfig::default())
            .metrics_snapshot(None)
            .to_prometheus(),
    );
    let four = shard_free(
        &run_core(4, ObsConfig::default())
            .metrics_snapshot(None)
            .to_prometheus(),
    );
    assert!(
        one.contains("sequin_detection_latency_bucket"),
        "filter selected nothing:\n{one}"
    );
    assert_eq!(one, four, "output-derived series diverged across shards");
}

#[test]
fn disabled_obs_drops_recorder_series_but_keeps_operator_counters() {
    let core = run_core(1, ObsConfig::disabled());
    assert!(!core.obs_enabled());
    let prom = core.metrics_snapshot(None).to_prometheus();
    assert!(!prom.contains("sequin_detection_latency"), "{prom}");
    assert!(!prom.contains("sequin_deferral_time"), "{prom}");
    assert!(!prom.contains("sequin_trace_spans"), "{prom}");
    // the always-on operator counters and gauges still expose
    assert!(prom.contains("sequin_engine_insertions{"), "{prom}");
    assert!(prom.contains("sequin_watermark_lag{"), "{prom}");
    assert_prometheus_parses(&prom);
    // and the trace ring is empty
    assert!(
        core.trace_json().contains("\"spans\":[]"),
        "{}",
        core.trace_json()
    );
}

#[test]
fn sharded_server_serves_shard_labelled_series() {
    let (reg, stream) = workload(400, 3);
    let mut cfg = core_config(&reg);
    cfg.shards = 3;
    let mut server = Server::start(ServerConfig::new(cfg)).unwrap();
    let addr = server.listen("127.0.0.1:0").unwrap().to_string();

    let mut client = Client::connect(&addr).unwrap();
    client.hello(reg.fingerprint(), "shard-feeder").unwrap();
    // partitionable (tag equality chain): the hybrid backend gives this
    // query a routed 3-worker pool rather than hosting it on the shared
    // plan
    client
        .subscribe("PATTERN SEQ(T0 a, T1 b) WHERE a.tag == b.tag WITHIN 20")
        .unwrap();
    for item in &stream {
        client.send_item(item).unwrap();
    }
    client.drain().unwrap();
    let prom = client.metrics(MetricsFormat::Prometheus).unwrap();
    for shard in 0..3 {
        let needle = format!("shard=\"{shard}\"");
        assert!(prom.contains(&needle), "missing `{needle}` in:\n{prom}");
    }
    assert!(prom.contains("sequin_shard_insertions{"), "{prom}");
    // ingest-edge routing telemetry is exposed per shard as well
    assert!(prom.contains("sequin_route_full_events{"), "{prom}");
    assert!(prom.contains("sequin_route_advances{"), "{prom}");
    assert!(prom.contains("sequin_route_queue_depth_peak{"), "{prom}");
    assert_prometheus_parses(&prom);
    client.bye();
    server.shutdown();
}

/// Pins the disorder-policy metric names: `sequin_retraction_emitted`
/// (per query, plus `sequin_retraction_emitted_total`) and
/// `sequin_slack_bound`. Dashboards and the bench gate key on these
/// exact strings — renaming one is a breaking change, not cosmetics.
#[test]
fn retraction_and_slack_bound_series_are_pinned() {
    use sequin_engine::DisorderPolicy;
    let (reg, stream) = workload(800, 13);
    let mut cfg = core_config(&reg);
    cfg.engine.policy = DisorderPolicy::Speculative;
    let mut core = EngineCore::new(cfg);
    let spec = core
        .subscribe("PATTERN SEQ(T0 a, !T1 b, T2 c) WITHIN 20")
        .unwrap();
    let (adaptive, effective) = core
        .subscribe_with_policy(
            "PATTERN SEQ(T1 a, T2 b) WITHIN 20",
            Some(DisorderPolicy::AdaptiveSlack { accuracy: 90 }),
        )
        .unwrap();
    assert_eq!(effective, DisorderPolicy::AdaptiveSlack { accuracy: 90 });
    for chunk in stream.chunks(64) {
        core.ingest_batch(chunk);
    }
    core.finish();
    let prom = core.metrics_snapshot(None).to_prometheus();
    for needle in [
        "sequin_retraction_emitted{",
        "sequin_retraction_emitted_total",
        "sequin_slack_bound{",
    ] {
        assert!(prom.contains(needle), "missing `{needle}` in:\n{prom}");
    }
    // the speculative negation query actually retracted something...
    let spec_series = format!("sequin_retraction_emitted{{query=\"{}\"}}", spec.index());
    let retracted = prom
        .lines()
        .find(|l| l.starts_with(&spec_series))
        .and_then(|l| l.rsplit_once(' '))
        .and_then(|(_, v)| v.parse::<u64>().ok())
        .unwrap_or_else(|| panic!("no `{spec_series}` series in:\n{prom}"));
    assert!(retracted > 0, "speculation never retracted:\n{prom}");
    // ...and the adaptive query exposes a live slack-bound gauge
    let slack_series = format!("sequin_slack_bound{{query=\"{}\"}}", adaptive.index());
    assert!(
        prom.lines().any(|l| l.starts_with(&slack_series)),
        "no `{slack_series}` series in:\n{prom}"
    );
    assert_prometheus_parses(&prom);
}
