//! Hand-rolled, versioned, checksummed binary codec for checkpoints.
//!
//! The workspace must stay offline-buildable, so checkpoint serialization
//! cannot pull in `serde`/`bincode`. This module provides the small amount
//! of machinery the checkpoint subsystem actually needs:
//!
//! * [`Writer`] / [`Reader`] — little-endian primitive encoding with
//!   length-prefixed strings and sequences;
//! * [`Encode`] / [`Decode`] — implemented for the core data model
//!   ([`Value`], [`Event`], timestamps, ids, `Vec<T>`, `Option<T>`), and
//!   by the runtime/engine crates for their stateful structures;
//! * a checksummed **envelope** ([`seal_envelope`] / [`open_envelope`]):
//!   `magic ‖ version ‖ payload-length ‖ payload ‖ fnv1a-64` — any
//!   truncation or bit flip is detected before a single payload byte is
//!   interpreted, so a corrupted checkpoint is *rejected*, never restored
//!   into silently wrong state.
//!
//! ## Versioning
//!
//! [`CODEC_VERSION`] is bumped on any layout change. [`open_envelope`]
//! rejects both unknown versions and checksum mismatches with a typed
//! [`CodecError`], which the restore path maps onto its fallback ladder
//! (previous good checkpoint, then cold start).

use std::fmt;
use std::sync::Arc;

use crate::event::{Event, EventRef};
use crate::schema::{EventTypeId, FieldId};
use crate::time::{ArrivalSeq, Duration, Timestamp};
use crate::value::Value;

/// Current checkpoint wire-format version.
pub const CODEC_VERSION: u16 = 1;

/// Envelope magic: "SQCK" (sequin checkpoint).
pub const MAGIC: [u8; 4] = *b"SQCK";

/// A decoding or envelope-validation failure.
///
/// Every variant is a *rejection*: the bytes are not trusted and no
/// partial state escapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Ran out of bytes mid-field (truncation).
    UnexpectedEof,
    /// The envelope does not start with [`MAGIC`].
    BadMagic,
    /// The envelope version is not one this build can read.
    UnsupportedVersion(u16),
    /// The envelope checksum does not match its contents (bit corruption).
    ChecksumMismatch {
        /// Checksum stored in the envelope.
        stored: u64,
        /// Checksum recomputed over the received bytes.
        computed: u64,
    },
    /// A discriminant byte was out of range for the type being decoded.
    InvalidTag {
        /// The type being decoded.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A declared length exceeds the bytes actually present.
    BadLength,
    /// Bytes were left over after the value was fully decoded.
    TrailingBytes(usize),
    /// The snapshot belongs to a different query/configuration.
    SnapshotMismatch(&'static str),
    /// The operation is not supported by this engine/structure.
    Unsupported(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of checkpoint data"),
            CodecError::BadMagic => write!(f, "not a sequin checkpoint (bad magic)"),
            CodecError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported checkpoint version {v} (this build reads {CODEC_VERSION})"
                )
            }
            CodecError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            ),
            CodecError::InvalidTag { what, tag } => {
                write!(f, "invalid tag byte {tag:#04x} while decoding {what}")
            }
            CodecError::BadLength => write!(f, "declared length exceeds available bytes"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after decode"),
            CodecError::SnapshotMismatch(what) => {
                write!(f, "snapshot was taken under a different {what}")
            }
            CodecError::Unsupported(what) => write!(f, "{what} does not support snapshots"),
        }
    }
}

impl std::error::Error for CodecError {}

/// FNV-1a 64-bit hash — the envelope checksum. Not cryptographic; it
/// exists to catch truncation and bit rot, not adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append-only byte sink for encoding.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes a length-prefixed byte blob (e.g. a nested envelope).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }
}

/// Cursor over encoded bytes for decoding.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { buf: bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails with [`CodecError::TrailingBytes`] unless fully consumed.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes(self.remaining()))
        }
    }

    /// Consumes exactly `n` bytes, borrowing them from the input.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a bool byte (strict: only 0 or 1 are valid).
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(CodecError::InvalidTag { what: "bool", tag }),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, CodecError> {
        let len = self.get_len()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadLength)
    }

    /// Reads a length-prefixed byte blob.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let len = self.get_len()?;
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a `u64` length prefix, bounds-checked against the remaining
    /// bytes so corrupted lengths cannot trigger huge allocations.
    pub fn get_len(&mut self) -> Result<usize, CodecError> {
        let len = self.get_u64()?;
        if len > self.remaining() as u64 {
            return Err(CodecError::BadLength);
        }
        Ok(len as usize)
    }
}

/// Types that can write themselves to a [`Writer`].
pub trait Encode {
    /// Appends this value's encoding.
    fn encode(&self, w: &mut Writer);
}

/// Types that can reconstruct themselves from a [`Reader`].
pub trait Decode: Sized {
    /// Reads one value, advancing the reader.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;
}

impl Encode for u64 {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(*self);
    }
}

impl Decode for u64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.get_u64()
    }
}

impl Encode for i64 {
    fn encode(&self, w: &mut Writer) {
        w.put_i64(*self);
    }
}

impl Decode for i64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.get_i64()
    }
}

impl Encode for Timestamp {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.ticks());
    }
}

impl Decode for Timestamp {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Timestamp::new(r.get_u64()?))
    }
}

impl Encode for Duration {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.ticks());
    }
}

impl Decode for Duration {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Duration::new(r.get_u64()?))
    }
}

impl Encode for ArrivalSeq {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.get());
    }
}

impl Decode for ArrivalSeq {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(ArrivalSeq::new(r.get_u64()?))
    }
}

impl Encode for crate::EventId {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.get());
    }
}

impl Decode for crate::EventId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(crate::EventId::new(r.get_u64()?))
    }
}

impl Encode for EventTypeId {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.index() as u32);
    }
}

impl Decode for EventTypeId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(EventTypeId::from_index(r.get_u32()? as usize))
    }
}

impl Encode for FieldId {
    fn encode(&self, w: &mut Writer) {
        w.put_u16(self.index() as u16);
    }
}

impl Decode for FieldId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(FieldId::from_index(r.get_u16()? as usize))
    }
}

impl Encode for Value {
    fn encode(&self, w: &mut Writer) {
        match self {
            Value::Int(v) => {
                w.put_u8(0);
                w.put_i64(*v);
            }
            Value::Float(v) => {
                w.put_u8(1);
                w.put_f64(*v);
            }
            Value::Str(s) => {
                w.put_u8(2);
                w.put_str(s);
            }
            Value::Bool(b) => {
                w.put_u8(3);
                w.put_bool(*b);
            }
        }
    }
}

impl Decode for Value {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(Value::Int(r.get_i64()?)),
            1 => Ok(Value::Float(r.get_f64()?)),
            2 => Ok(Value::str(&*r.get_str()?)),
            3 => Ok(Value::Bool(r.get_bool()?)),
            tag => Err(CodecError::InvalidTag { what: "Value", tag }),
        }
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(CodecError::InvalidTag {
                what: "Option",
                tag,
            }),
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.len() as u64);
        for v in self {
            v.encode(w);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = r.get_u64()?;
        // every element costs ≥ 1 byte, so a corrupt length is caught
        // before allocation
        if len > r.remaining() as u64 {
            return Err(CodecError::BadLength);
        }
        let mut out = Vec::with_capacity(len as usize);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl Encode for Event {
    fn encode(&self, w: &mut Writer) {
        self.id().encode(w);
        self.event_type().encode(w);
        self.ts().encode(w);
        self.arrival().encode(w);
        w.put_u64(self.attrs().len() as u64);
        for a in self.attrs() {
            a.encode(w);
        }
    }
}

impl Decode for Event {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let id = crate::EventId::decode(r)?;
        let ty = EventTypeId::decode(r)?;
        let ts = Timestamp::decode(r)?;
        let seq = ArrivalSeq::decode(r)?;
        let n = r.get_u64()?;
        if n > r.remaining() as u64 {
            return Err(CodecError::BadLength);
        }
        let mut b = Event::builder(ty, ts).id(id);
        for _ in 0..n {
            b = b.attr(Value::decode(r)?);
        }
        Ok(b.build().with_arrival(seq))
    }
}

impl Encode for EventRef {
    fn encode(&self, w: &mut Writer) {
        (**self).encode(w);
    }
}

impl Decode for EventRef {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Arc::new(Event::decode(r)?))
    }
}

/// Wraps an encoded payload in the checksummed, versioned envelope.
pub fn seal_envelope(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 22);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&CODEC_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = fnv1a64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Validates an envelope and returns its payload slice.
///
/// Rejects (in order): short header, wrong magic, unknown version,
/// truncated payload, and checksum mismatch. Only after all five checks
/// pass is a single payload byte handed to a decoder.
pub fn open_envelope(bytes: &[u8]) -> Result<&[u8], CodecError> {
    const HEADER: usize = 4 + 2 + 8;
    if bytes.len() < HEADER + 8 {
        return Err(CodecError::UnexpectedEof);
    }
    if bytes[..4] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("len 2"));
    if version != CODEC_VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let len = u64::from_le_bytes(bytes[6..HEADER].try_into().expect("len 8"));
    let expected_total = HEADER as u64 + len + 8;
    if bytes.len() as u64 != expected_total {
        return Err(CodecError::BadLength);
    }
    let body_end = HEADER + len as usize;
    let stored = u64::from_le_bytes(bytes[body_end..].try_into().expect("len 8"));
    let computed = fnv1a64(&bytes[..body_end]);
    if stored != computed {
        return Err(CodecError::ChecksumMismatch { stored, computed });
    }
    Ok(&bytes[HEADER..body_end])
}

/// Encodes a value and seals it in the envelope in one step.
pub fn encode_sealed<T: Encode>(value: &T) -> Vec<u8> {
    let mut w = Writer::new();
    value.encode(&mut w);
    seal_envelope(&w.into_bytes())
}

/// Opens an envelope and decodes exactly one value from its payload.
pub fn decode_sealed<T: Decode>(bytes: &[u8]) -> Result<T, CodecError> {
    let payload = open_envelope(bytes)?;
    let mut r = Reader::new(payload);
    let v = T::decode(&mut r)?;
    r.finish()?;
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_event() -> Event {
        Event::builder(EventTypeId::from_index(3), Timestamp::new(1234))
            .id(crate::EventId::new(77))
            .attr(Value::Int(-5))
            .attr(Value::Float(2.5))
            .attr(Value::str("hello"))
            .attr(Value::Bool(true))
            .build()
            .with_arrival(ArrivalSeq::new(9))
    }

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u16(300);
        w.put_u32(70_000);
        w.put_u64(u64::MAX);
        w.put_i64(-42);
        w.put_f64(1.5);
        w.put_bool(true);
        w.put_str("héllo");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 300);
        assert_eq!(r.get_u32().unwrap(), 70_000);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap(), 1.5);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_str().unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn value_variants_round_trip() {
        for v in [
            Value::Int(-1),
            Value::Float(0.25),
            Value::str("x"),
            Value::Bool(false),
        ] {
            let mut w = Writer::new();
            v.encode(&mut w);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(Value::decode(&mut r).unwrap(), v);
            r.finish().unwrap();
        }
    }

    #[test]
    fn event_round_trips_with_all_bookkeeping() {
        let e = sample_event();
        let mut w = Writer::new();
        e.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = Event::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.id(), e.id());
        assert_eq!(back.event_type(), e.event_type());
        assert_eq!(back.ts(), e.ts());
        assert_eq!(back.arrival(), e.arrival());
        assert_eq!(back.attrs(), e.attrs());
    }

    #[test]
    fn vec_and_option_round_trip() {
        let v: Vec<Option<u64>> = vec![Some(1), None, Some(3)];
        let bytes = encode_sealed(&v);
        let back: Vec<Option<u64>> = decode_sealed(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn envelope_accepts_intact_bytes() {
        let sealed = seal_envelope(b"payload");
        assert_eq!(open_envelope(&sealed).unwrap(), b"payload");
    }

    #[test]
    fn envelope_rejects_every_single_bit_flip() {
        let sealed = seal_envelope(b"some checkpoint payload");
        for byte in 0..sealed.len() {
            for bit in 0..8 {
                let mut bad = sealed.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    open_envelope(&bad).is_err(),
                    "flip at byte {byte} bit {bit} must be rejected"
                );
            }
        }
    }

    #[test]
    fn envelope_rejects_every_truncation() {
        let sealed = seal_envelope(b"some checkpoint payload");
        for keep in 0..sealed.len() {
            assert!(
                open_envelope(&sealed[..keep]).is_err(),
                "truncation to {keep} bytes"
            );
        }
    }

    #[test]
    fn envelope_rejects_wrong_version_and_magic() {
        let mut sealed = seal_envelope(b"x");
        sealed[4] = 0xFF; // version byte
        assert!(matches!(
            open_envelope(&sealed),
            Err(CodecError::UnsupportedVersion(_))
        ));
        let mut sealed = seal_envelope(b"x");
        sealed[0] = b'Z';
        assert!(matches!(open_envelope(&sealed), Err(CodecError::BadMagic)));
    }

    #[test]
    fn corrupt_length_prefixes_do_not_allocate() {
        // a Vec<u64> whose length claims more elements than bytes remain
        let mut w = Writer::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(Vec::<u64>::decode(&mut r), Err(CodecError::BadLength));
        // same for strings
        let mut w = Writer::new();
        w.put_u64(1 << 40);
        w.put_u8(b'a');
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_str(), Err(CodecError::BadLength));
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut w = Writer::new();
        42u64.encode(&mut w);
        w.put_u8(0xAA);
        let sealed = seal_envelope(&w.into_bytes());
        assert_eq!(
            decode_sealed::<u64>(&sealed),
            Err(CodecError::TrailingBytes(1))
        );
    }

    #[test]
    fn errors_display_distinctly() {
        let errs: Vec<CodecError> = vec![
            CodecError::UnexpectedEof,
            CodecError::BadMagic,
            CodecError::UnsupportedVersion(9),
            CodecError::ChecksumMismatch {
                stored: 1,
                computed: 2,
            },
            CodecError::InvalidTag {
                what: "Value",
                tag: 9,
            },
            CodecError::BadLength,
            CodecError::TrailingBytes(3),
            CodecError::SnapshotMismatch("query"),
            CodecError::Unsupported("in-order engine"),
        ];
        let texts: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
        for (i, a) in texts.iter().enumerate() {
            assert!(!a.is_empty());
            for b in &texts[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
