//! Interned event types and their attribute schemas.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::error::TypeError;
use crate::value::ValueKind;

/// A compact, interned identifier for an event type (e.g. `SHIPPED`).
///
/// Identifiers are dense indices into a [`TypeRegistry`], so operator state
/// can be arrays indexed by type rather than hash maps keyed by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventTypeId(u32);

impl EventTypeId {
    /// Returns the dense index of this type within its registry.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs an id from a dense index.
    ///
    /// Only meaningful for indices previously obtained from the same
    /// [`TypeRegistry`].
    #[inline]
    pub const fn from_index(ix: usize) -> EventTypeId {
        EventTypeId(ix as u32)
    }
}

impl fmt::Display for EventTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ty{}", self.0)
    }
}

/// A field (attribute) position within an event type's [`Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FieldId(u16);

impl FieldId {
    /// Returns the dense index of this field within its schema.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a field id from a dense index.
    #[inline]
    pub const fn from_index(ix: usize) -> FieldId {
        FieldId(ix as u16)
    }
}

/// The attribute layout of one event type: ordered `(name, kind)` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    name: Arc<str>,
    fields: Vec<(Arc<str>, ValueKind)>,
}

impl Schema {
    /// Returns the event type's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the number of attributes.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Looks a field up by name.
    pub fn field(&self, name: &str) -> Option<(FieldId, ValueKind)> {
        self.fields
            .iter()
            .position(|(n, _)| &**n == name)
            .map(|ix| (FieldId::from_index(ix), self.fields[ix].1))
    }

    /// Returns the kind of the field at `id`, if it exists.
    pub fn field_kind(&self, id: FieldId) -> Option<ValueKind> {
        self.fields.get(id.index()).map(|(_, k)| *k)
    }

    /// Returns the name of the field at `id`, if it exists.
    pub fn field_name(&self, id: FieldId) -> Option<&str> {
        self.fields.get(id.index()).map(|(n, _)| &**n)
    }

    /// Iterates over `(name, kind)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, ValueKind)> {
        self.fields.iter().map(|(n, k)| (&**n, *k))
    }
}

/// Registry interning event type names and holding their schemas.
///
/// A registry is built once (typically while parsing a workload or query
/// setup) and then shared immutably (`Arc<TypeRegistry>`) by generators,
/// queries, and engines.
///
/// ```
/// use sequin_types::{TypeRegistry, ValueKind};
/// let mut reg = TypeRegistry::new();
/// let a = reg.declare("A", &[("x", ValueKind::Int)]).unwrap();
/// assert_eq!(reg.lookup("A"), Some(a));
/// assert_eq!(reg.schema(a).name(), "A");
/// ```
#[derive(Debug, Clone, Default)]
pub struct TypeRegistry {
    by_name: HashMap<Arc<str>, EventTypeId>,
    schemas: Vec<Schema>,
}

impl TypeRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        TypeRegistry::default()
    }

    /// Declares a new event type with the given attribute schema.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::DuplicateType`] if the name is already declared
    /// and [`TypeError::DuplicateField`] if two fields share a name.
    pub fn declare(
        &mut self,
        name: &str,
        fields: &[(&str, ValueKind)],
    ) -> Result<EventTypeId, TypeError> {
        if self.by_name.contains_key(name) {
            return Err(TypeError::DuplicateType(name.to_owned()));
        }
        for (i, (f, _)) in fields.iter().enumerate() {
            if fields[..i].iter().any(|(g, _)| g == f) {
                return Err(TypeError::DuplicateField {
                    ty: name.to_owned(),
                    field: (*f).to_owned(),
                });
            }
        }
        let id = EventTypeId(self.schemas.len() as u32);
        let name: Arc<str> = Arc::from(name);
        self.schemas.push(Schema {
            name: Arc::clone(&name),
            fields: fields.iter().map(|(n, k)| (Arc::from(*n), *k)).collect(),
        });
        self.by_name.insert(name, id);
        Ok(id)
    }

    /// Convenience: declares a set of attribute-less marker types.
    ///
    /// # Errors
    ///
    /// Propagates [`TypeError::DuplicateType`] for repeated names.
    pub fn declare_markers(&mut self, names: &[&str]) -> Result<Vec<EventTypeId>, TypeError> {
        names.iter().map(|n| self.declare(n, &[])).collect()
    }

    /// Resolves a type name to its id.
    pub fn lookup(&self, name: &str) -> Option<EventTypeId> {
        self.by_name.get(name).copied()
    }

    /// Returns the schema for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this registry.
    pub fn schema(&self, id: EventTypeId) -> &Schema {
        &self.schemas[id.index()]
    }

    /// Returns the number of declared types.
    pub fn len(&self) -> usize {
        self.schemas.len()
    }

    /// Returns `true` when no types have been declared.
    pub fn is_empty(&self) -> bool {
        self.schemas.is_empty()
    }

    /// Iterates over all `(id, schema)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (EventTypeId, &Schema)> {
        self.schemas
            .iter()
            .enumerate()
            .map(|(ix, s)| (EventTypeId::from_index(ix), s))
    }

    /// A stable 64-bit fingerprint of the full schema: type names, field
    /// names, and field kinds, in declaration order.
    ///
    /// Two registries share a fingerprint iff they intern the same types
    /// the same way, so interned [`EventTypeId`]s and [`FieldId`]s mean the
    /// same thing on both sides. The wire protocol's HELLO negotiation
    /// compares client and server fingerprints before any event payload is
    /// interpreted.
    pub fn fingerprint(&self) -> u64 {
        let mut w = crate::codec::Writer::new();
        w.put_u64(self.schemas.len() as u64);
        for s in &self.schemas {
            w.put_str(s.name());
            w.put_u64(s.arity() as u64);
            for (name, kind) in s.iter() {
                w.put_str(name);
                let tag = match kind {
                    ValueKind::Int => 0u8,
                    ValueKind::Float => 1,
                    ValueKind::Str => 2,
                    ValueKind::Bool => 3,
                };
                w.put_u8(tag);
            }
        }
        crate::codec::fnv1a64(&w.into_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_lookup() {
        let mut reg = TypeRegistry::new();
        let a = reg
            .declare("A", &[("x", ValueKind::Int), ("y", ValueKind::Str)])
            .unwrap();
        let b = reg.declare("B", &[]).unwrap();
        assert_ne!(a, b);
        assert_eq!(reg.lookup("A"), Some(a));
        assert_eq!(reg.lookup("B"), Some(b));
        assert_eq!(reg.lookup("C"), None);
        assert_eq!(reg.len(), 2);
        assert!(!reg.is_empty());
    }

    #[test]
    fn duplicate_type_rejected() {
        let mut reg = TypeRegistry::new();
        reg.declare("A", &[]).unwrap();
        let err = reg.declare("A", &[]).unwrap_err();
        assert!(matches!(err, TypeError::DuplicateType(_)));
    }

    #[test]
    fn duplicate_field_rejected() {
        let mut reg = TypeRegistry::new();
        let err = reg
            .declare("A", &[("x", ValueKind::Int), ("x", ValueKind::Str)])
            .unwrap_err();
        assert!(matches!(err, TypeError::DuplicateField { .. }));
    }

    #[test]
    fn schema_field_resolution() {
        let mut reg = TypeRegistry::new();
        let a = reg
            .declare("A", &[("x", ValueKind::Int), ("y", ValueKind::Float)])
            .unwrap();
        let schema = reg.schema(a);
        assert_eq!(schema.arity(), 2);
        let (fx, kx) = schema.field("x").unwrap();
        assert_eq!(fx.index(), 0);
        assert_eq!(kx, ValueKind::Int);
        assert_eq!(schema.field("z"), None);
        assert_eq!(schema.field_name(FieldId::from_index(1)), Some("y"));
        assert_eq!(
            schema.field_kind(FieldId::from_index(1)),
            Some(ValueKind::Float)
        );
        assert_eq!(schema.field_kind(FieldId::from_index(9)), None);
    }

    #[test]
    fn declare_markers_assigns_dense_ids() {
        let mut reg = TypeRegistry::new();
        let ids = reg.declare_markers(&["A", "B", "C"]).unwrap();
        assert_eq!(ids.len(), 3);
        assert_eq!(ids[0].index(), 0);
        assert_eq!(ids[2].index(), 2);
    }

    #[test]
    fn iter_walks_declaration_order() {
        let mut reg = TypeRegistry::new();
        reg.declare_markers(&["A", "B"]).unwrap();
        let names: Vec<_> = reg.iter().map(|(_, s)| s.name().to_owned()).collect();
        assert_eq!(names, ["A", "B"]);
    }

    #[test]
    fn fingerprint_distinguishes_schemas() {
        let mut a = TypeRegistry::new();
        a.declare("A", &[("x", ValueKind::Int)]).unwrap();
        let mut same = TypeRegistry::new();
        same.declare("A", &[("x", ValueKind::Int)]).unwrap();
        assert_eq!(a.fingerprint(), same.fingerprint());

        let mut kind = TypeRegistry::new();
        kind.declare("A", &[("x", ValueKind::Float)]).unwrap();
        assert_ne!(a.fingerprint(), kind.fingerprint());

        let mut field = TypeRegistry::new();
        field.declare("A", &[("y", ValueKind::Int)]).unwrap();
        assert_ne!(a.fingerprint(), field.fingerprint());

        let mut name = TypeRegistry::new();
        name.declare("B", &[("x", ValueKind::Int)]).unwrap();
        assert_ne!(a.fingerprint(), name.fingerprint());

        let mut extra = TypeRegistry::new();
        extra.declare("A", &[("x", ValueKind::Int)]).unwrap();
        extra.declare("B", &[]).unwrap();
        assert_ne!(a.fingerprint(), extra.fingerprint());
    }

    #[test]
    fn schema_iter_yields_fields_in_order() {
        let mut reg = TypeRegistry::new();
        let a = reg
            .declare("A", &[("x", ValueKind::Int), ("y", ValueKind::Bool)])
            .unwrap();
        let fields: Vec<_> = reg.schema(a).iter().collect();
        assert_eq!(fields, [("x", ValueKind::Int), ("y", ValueKind::Bool)]);
    }
}
