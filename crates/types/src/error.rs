//! Errors raised by the type layer.

use std::error::Error;
use std::fmt;

/// Error produced while declaring event types or validating events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// An event type with this name was already declared.
    DuplicateType(String),
    /// Two fields of one event type share a name.
    DuplicateField {
        /// The event type being declared.
        ty: String,
        /// The repeated field name.
        field: String,
    },
    /// A referenced event type name is not declared in the registry.
    UnknownType(String),
    /// A referenced field is not part of the event type's schema.
    UnknownField {
        /// The event type consulted.
        ty: String,
        /// The missing field name.
        field: String,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::DuplicateType(n) => write!(f, "event type `{n}` declared twice"),
            TypeError::DuplicateField { ty, field } => {
                write!(f, "field `{field}` declared twice on event type `{ty}`")
            }
            TypeError::UnknownType(n) => write!(f, "unknown event type `{n}`"),
            TypeError::UnknownField { ty, field } => {
                write!(f, "event type `{ty}` has no field `{field}`")
            }
        }
    }
}

impl Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let msgs = [
            TypeError::DuplicateType("A".into()).to_string(),
            TypeError::DuplicateField {
                ty: "A".into(),
                field: "x".into(),
            }
            .to_string(),
            TypeError::UnknownType("B".into()).to_string(),
            TypeError::UnknownField {
                ty: "A".into(),
                field: "y".into(),
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn Error> = Box::new(TypeError::UnknownType("X".into()));
        assert!(e.source().is_none());
    }
}
