//! Stream items: the unit of ingestion for engines.

use std::fmt;

use crate::event::EventRef;
use crate::time::Timestamp;

/// One item on the wire between the (simulated) network and an engine.
///
/// Engines consume a sequence of `StreamItem`s *in arrival order*. Besides
/// events, sources may interleave **punctuations**: assertions that no event
/// with a strictly smaller occurrence timestamp is still in flight.
/// Punctuations are the alternative to an a-priori K-slack disorder bound
/// for driving state purge and sealed-negation decisions.
#[derive(Debug, Clone)]
pub enum StreamItem {
    /// A payload event.
    Event(EventRef),
    /// An assertion: every future event `e` satisfies `e.ts() >= t`.
    Punctuation(Timestamp),
}

impl StreamItem {
    /// Returns the contained event, if this is an event item.
    pub fn as_event(&self) -> Option<&EventRef> {
        match self {
            StreamItem::Event(e) => Some(e),
            StreamItem::Punctuation(_) => None,
        }
    }

    /// Returns the punctuation timestamp, if this is a punctuation.
    pub fn as_punctuation(&self) -> Option<Timestamp> {
        match self {
            StreamItem::Event(_) => None,
            StreamItem::Punctuation(t) => Some(*t),
        }
    }

    /// Returns the occurrence timestamp of the item (the event's `ts`, or
    /// the punctuation's asserted bound).
    pub fn ts(&self) -> Timestamp {
        match self {
            StreamItem::Event(e) => e.ts(),
            StreamItem::Punctuation(t) => *t,
        }
    }
}

impl fmt::Display for StreamItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamItem::Event(e) => write!(f, "ev({} {} {})", e.id(), e.event_type(), e.ts()),
            StreamItem::Punctuation(t) => write!(f, "punct({t})"),
        }
    }
}

impl From<EventRef> for StreamItem {
    fn from(e: EventRef) -> StreamItem {
        StreamItem::Event(e)
    }
}

/// Sorts events by `(ts, id)` — the canonical total order used to feed the
/// in-order oracle engine. Event ids break timestamp ties deterministically.
pub fn sort_by_timestamp(events: &mut [EventRef]) {
    events.sort_by_key(|e| (e.ts(), e.id()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::schema::EventTypeId;
    use crate::value::Value;
    use crate::EventId;
    use std::sync::Arc;

    fn ev(id: u64, ts: u64) -> EventRef {
        Arc::new(
            Event::builder(EventTypeId::from_index(0), Timestamp::new(ts))
                .id(EventId::new(id))
                .attr(Value::Int(id as i64))
                .build(),
        )
    }

    #[test]
    fn event_item_accessors() {
        let e = ev(1, 10);
        let item = StreamItem::from(Arc::clone(&e));
        assert!(item.as_event().is_some());
        assert_eq!(item.as_punctuation(), None);
        assert_eq!(item.ts(), Timestamp::new(10));
    }

    #[test]
    fn punctuation_accessors() {
        let item = StreamItem::Punctuation(Timestamp::new(7));
        assert!(item.as_event().is_none());
        assert_eq!(item.as_punctuation(), Some(Timestamp::new(7)));
        assert_eq!(item.ts(), Timestamp::new(7));
    }

    #[test]
    fn sort_orders_by_ts_then_id() {
        let mut evs = vec![ev(3, 20), ev(2, 10), ev(1, 10)];
        sort_by_timestamp(&mut evs);
        let ids: Vec<u64> = evs.iter().map(|e| e.id().get()).collect();
        assert_eq!(ids, [1, 2, 3]);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!StreamItem::Punctuation(Timestamp::new(1))
            .to_string()
            .is_empty());
        assert!(!StreamItem::from(ev(1, 1)).to_string().is_empty());
    }
}
