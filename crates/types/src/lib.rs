//! # sequin-types
//!
//! Core data model for the `sequin` event stream processing system: typed
//! attribute [`Value`]s, logical [`Timestamp`]s and arrival order, interned
//! event types with per-type [`Schema`]s, the [`Event`] record itself, and
//! the [`StreamItem`] wrapper (event or punctuation) that engines consume.
//!
//! The model follows the one used by SASE-style complex event processing
//! systems and by Li et al., *"Event Stream Processing with Out-of-Order
//! Data Arrival"* (ICDCS Workshops 2007):
//!
//! * every event carries an **occurrence timestamp** assigned at the source
//!   (the total order the *query semantics* are defined over), and
//! * an **arrival sequence number** assigned by the receiving engine (the
//!   order the *physical operators* actually see).
//!
//! Out-of-order processing is precisely the business of reconciling those
//! two orders.
//!
//! ```
//! use sequin_types::{TypeRegistry, Value, ValueKind, Event, Timestamp};
//!
//! let mut reg = TypeRegistry::new();
//! let shipped = reg.declare("SHIPPED", &[("tag", ValueKind::Int)]).unwrap();
//! let ev = Event::new(shipped, Timestamp::new(42), vec![Value::Int(7)]);
//! assert_eq!(ev.ts(), Timestamp::new(42));
//! assert_eq!(ev.attr(0), Some(&Value::Int(7)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod error;
mod event;
mod schema;
mod stream;
mod time;
mod value;

pub use codec::{CodecError, Decode, Encode, Reader, Writer};
pub use error::TypeError;
pub use event::{Event, EventBuilder, EventId, EventRef};
pub use schema::{EventTypeId, FieldId, Schema, TypeRegistry};
pub use stream::{sort_by_timestamp, StreamItem};
pub use time::{ArrivalSeq, Duration, Timestamp};
pub use value::{Value, ValueKind};
