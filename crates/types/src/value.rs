//! Typed attribute values carried by events.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// The runtime type of a [`Value`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueKind {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// Immutable UTF-8 string.
    Str,
    /// Boolean.
    Bool,
}

impl fmt::Display for ValueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueKind::Int => "int",
            ValueKind::Float => "float",
            ValueKind::Str => "str",
            ValueKind::Bool => "bool",
        };
        f.write_str(s)
    }
}

/// A dynamically-typed attribute value.
///
/// Strings are reference-counted so events stay cheap to clone as they move
/// through operator state (stacks hold `Arc<Event>`, but intermediate tuples
/// copy projected values).
///
/// Comparison semantics mirror the query language: `Int` and `Float`
/// compare numerically with each other; all other cross-kind comparisons
/// return `None` (and evaluate to "predicate failed" at the operator level).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Float(f64),
    /// Immutable UTF-8 string.
    Str(Arc<str>),
    /// Boolean.
    Bool(bool),
}

#[allow(clippy::should_implement_trait)]
impl Value {
    /// Creates a string value.
    pub fn str(s: impl Into<Arc<str>>) -> Value {
        Value::Str(s.into())
    }

    /// Returns this value's runtime kind.
    pub fn kind(&self) -> ValueKind {
        match self {
            Value::Int(_) => ValueKind::Int,
            Value::Float(_) => ValueKind::Float,
            Value::Str(_) => ValueKind::Str,
            Value::Bool(_) => ValueKind::Bool,
        }
    }

    /// Returns the integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the float payload; integers are widened to float.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Compares two values with the query language's coercion rules:
    /// numeric kinds compare with each other, like kinds compare directly,
    /// everything else is incomparable (`None`).
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Structural-with-coercion equality used by `==` predicates: numeric
    /// kinds are equal when numerically equal; cross-kind otherwise is
    /// `false`, never an error.
    pub fn loose_eq(&self, other: &Value) -> bool {
        matches!(self.compare(other), Some(Ordering::Equal))
    }

    /// Adds two numeric values (`Int + Int → Int`, otherwise float).
    pub fn add(&self, other: &Value) -> Option<Value> {
        self.numeric_binop(other, |a, b| a.checked_add(b), |a, b| a + b)
    }

    /// Subtracts two numeric values.
    pub fn sub(&self, other: &Value) -> Option<Value> {
        self.numeric_binop(other, |a, b| a.checked_sub(b), |a, b| a - b)
    }

    /// Multiplies two numeric values.
    pub fn mul(&self, other: &Value) -> Option<Value> {
        self.numeric_binop(other, |a, b| a.checked_mul(b), |a, b| a * b)
    }

    /// Divides two numeric values; integer division by zero yields `None`.
    pub fn div(&self, other: &Value) -> Option<Value> {
        self.numeric_binop(other, |a, b| a.checked_div(b), |a, b| a / b)
    }

    fn numeric_binop(
        &self,
        other: &Value,
        int_op: impl Fn(i64, i64) -> Option<i64>,
        float_op: impl Fn(f64, f64) -> f64,
    ) -> Option<Value> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => int_op(*a, *b).map(Value::Int),
            _ => {
                let a = self.as_float()?;
                let b = other.as_float()?;
                Some(Value::Float(float_op(a, b)))
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::Float(x)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(Arc::from(s))
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(Arc::from(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_report_correctly() {
        assert_eq!(Value::Int(1).kind(), ValueKind::Int);
        assert_eq!(Value::Float(1.0).kind(), ValueKind::Float);
        assert_eq!(Value::str("x").kind(), ValueKind::Str);
        assert_eq!(Value::Bool(true).kind(), ValueKind::Bool);
    }

    #[test]
    fn numeric_cross_kind_comparison() {
        assert_eq!(
            Value::Int(2).compare(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(1.5).compare(&Value::Int(2)),
            Some(Ordering::Less)
        );
        assert!(Value::Int(2).loose_eq(&Value::Float(2.0)));
    }

    #[test]
    fn cross_kind_non_numeric_is_incomparable() {
        assert_eq!(Value::str("a").compare(&Value::Int(1)), None);
        assert_eq!(Value::Bool(true).compare(&Value::Int(1)), None);
        assert!(!Value::str("a").loose_eq(&Value::Int(1)));
    }

    #[test]
    fn string_comparison_is_lexicographic() {
        assert_eq!(
            Value::str("abc").compare(&Value::str("abd")),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn nan_is_incomparable() {
        assert_eq!(Value::Float(f64::NAN).compare(&Value::Float(1.0)), None);
    }

    #[test]
    fn arithmetic_int_stays_int() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)), Some(Value::Int(5)));
        assert_eq!(Value::Int(2).mul(&Value::Int(3)), Some(Value::Int(6)));
    }

    #[test]
    fn arithmetic_mixes_to_float() {
        assert_eq!(
            Value::Int(2).add(&Value::Float(0.5)),
            Some(Value::Float(2.5))
        );
    }

    #[test]
    fn integer_division_by_zero_is_none() {
        assert_eq!(Value::Int(1).div(&Value::Int(0)), None);
    }

    #[test]
    fn integer_overflow_is_none() {
        assert_eq!(Value::Int(i64::MAX).add(&Value::Int(1)), None);
        assert_eq!(Value::Int(i64::MIN).sub(&Value::Int(1)), None);
    }

    #[test]
    fn arithmetic_on_non_numeric_is_none() {
        assert_eq!(Value::str("a").add(&Value::Int(1)), None);
        assert_eq!(Value::Bool(true).mul(&Value::Bool(false)), None);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert_eq!(Value::str("hi").as_str(), Some("hi"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Bool(true).as_int(), None);
    }

    #[test]
    fn conversions_from_primitives() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(0.5), Value::Float(0.5));
        assert_eq!(Value::from("s"), Value::str("s"));
        assert_eq!(Value::from(String::from("s")), Value::str("s"));
        assert_eq!(Value::from(true), Value::Bool(true));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(1).to_string(), "1");
        assert_eq!(Value::str("a").to_string(), "\"a\"");
        assert_eq!(ValueKind::Float.to_string(), "float");
    }
}
