//! The event record.

use std::fmt;
use std::sync::Arc;

use crate::schema::{EventTypeId, FieldId, TypeRegistry};
use crate::time::{ArrivalSeq, Timestamp};
use crate::value::Value;

/// A globally unique event identifier, assigned by the source/generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EventId(u64);

impl EventId {
    /// Creates an event id from a raw number.
    #[inline]
    pub const fn new(n: u64) -> Self {
        EventId(n)
    }

    /// Returns the raw number.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Shared handle to an immutable [`Event`].
///
/// Operator state (active instance stacks, reorder buffers, emitted matches)
/// all alias the same allocation.
pub type EventRef = Arc<Event>;

/// An immutable event record: type, occurrence timestamp, attributes, and
/// bookkeeping (id, arrival sequence).
///
/// The **occurrence timestamp** (`ts`) is the source-assigned logical time
/// that query semantics — sequencing, windows, negation intervals — are
/// defined over. The **arrival sequence** (`seq`) records the order the
/// engine physically received events in; it is `ArrivalSeq::default()` until
/// ingestion stamps it via [`Event::with_arrival`].
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    id: EventId,
    event_type: EventTypeId,
    ts: Timestamp,
    seq: ArrivalSeq,
    attrs: Vec<Value>,
}

impl Event {
    /// Creates an event with default id/arrival bookkeeping.
    ///
    /// `attrs` must be ordered per the event type's schema; this is not
    /// checked here (the generator and ingestion layers validate against the
    /// registry — see [`Event::validate`]).
    pub fn new(event_type: EventTypeId, ts: Timestamp, attrs: Vec<Value>) -> Event {
        Event {
            id: EventId::default(),
            event_type,
            ts,
            seq: ArrivalSeq::default(),
            attrs,
        }
    }

    /// Starts building an event with explicit bookkeeping fields.
    pub fn builder(event_type: EventTypeId, ts: Timestamp) -> EventBuilder {
        EventBuilder {
            id: EventId::default(),
            event_type,
            ts,
            attrs: Vec::new(),
        }
    }

    /// Returns a copy stamped with an arrival sequence number.
    pub fn with_arrival(&self, seq: ArrivalSeq) -> Event {
        let mut e = self.clone();
        e.seq = seq;
        e
    }

    /// Returns this event's identifier.
    #[inline]
    pub fn id(&self) -> EventId {
        self.id
    }

    /// Returns this event's type.
    #[inline]
    pub fn event_type(&self) -> EventTypeId {
        self.event_type
    }

    /// Returns the occurrence timestamp.
    #[inline]
    pub fn ts(&self) -> Timestamp {
        self.ts
    }

    /// Returns the arrival sequence number stamped at ingestion.
    #[inline]
    pub fn arrival(&self) -> ArrivalSeq {
        self.seq
    }

    /// Returns the attribute at field index `ix`, if present.
    #[inline]
    pub fn attr(&self, ix: usize) -> Option<&Value> {
        self.attrs.get(ix)
    }

    /// Returns the attribute for `field`, if present.
    #[inline]
    pub fn field(&self, field: FieldId) -> Option<&Value> {
        self.attrs.get(field.index())
    }

    /// Returns all attributes in schema order.
    pub fn attrs(&self) -> &[Value] {
        &self.attrs
    }

    /// Checks this event against its declared schema in `registry`:
    /// attribute count and kinds must match.
    pub fn validate(&self, registry: &TypeRegistry) -> bool {
        let schema = registry.schema(self.event_type);
        schema.arity() == self.attrs.len()
            && self
                .attrs
                .iter()
                .enumerate()
                .all(|(ix, v)| schema.field_kind(FieldId::from_index(ix)) == Some(v.kind()))
    }
}

/// Incremental constructor for [`Event`] (see `C-BUILDER`).
///
/// ```
/// use sequin_types::{Event, EventId, Timestamp, TypeRegistry, Value, ValueKind};
/// let mut reg = TypeRegistry::new();
/// let a = reg.declare("A", &[("x", ValueKind::Int)]).unwrap();
/// let ev = Event::builder(a, Timestamp::new(10))
///     .id(EventId::new(3))
///     .attr(Value::Int(5))
///     .build();
/// assert_eq!(ev.id(), EventId::new(3));
/// ```
#[derive(Debug, Clone)]
pub struct EventBuilder {
    id: EventId,
    event_type: EventTypeId,
    ts: Timestamp,
    attrs: Vec<Value>,
}

impl EventBuilder {
    /// Sets the event identifier.
    pub fn id(mut self, id: EventId) -> Self {
        self.id = id;
        self
    }

    /// Appends one attribute (in schema order).
    pub fn attr(mut self, v: Value) -> Self {
        self.attrs.push(v);
        self
    }

    /// Appends several attributes (in schema order).
    pub fn attrs(mut self, vs: impl IntoIterator<Item = Value>) -> Self {
        self.attrs.extend(vs);
        self
    }

    /// Finalizes the event.
    pub fn build(self) -> Event {
        Event {
            id: self.id,
            event_type: self.event_type,
            ts: self.ts,
            seq: ArrivalSeq::default(),
            attrs: self.attrs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ValueKind;

    fn reg() -> (TypeRegistry, EventTypeId) {
        let mut reg = TypeRegistry::new();
        let a = reg
            .declare("A", &[("x", ValueKind::Int), ("s", ValueKind::Str)])
            .unwrap();
        (reg, a)
    }

    #[test]
    fn construction_and_accessors() {
        let (_, a) = reg();
        let e = Event::new(a, Timestamp::new(5), vec![Value::Int(1), Value::str("q")]);
        assert_eq!(e.event_type(), a);
        assert_eq!(e.ts(), Timestamp::new(5));
        assert_eq!(e.attr(0), Some(&Value::Int(1)));
        assert_eq!(e.attr(2), None);
        assert_eq!(e.field(FieldId::from_index(1)), Some(&Value::str("q")));
        assert_eq!(e.attrs().len(), 2);
    }

    #[test]
    fn builder_produces_equivalent_event() {
        let (_, a) = reg();
        let e = Event::builder(a, Timestamp::new(5))
            .id(EventId::new(9))
            .attrs([Value::Int(1), Value::str("q")])
            .build();
        assert_eq!(e.id(), EventId::new(9));
        assert_eq!(e.attrs(), &[Value::Int(1), Value::str("q")]);
    }

    #[test]
    fn arrival_stamping_preserves_payload() {
        let (_, a) = reg();
        let e = Event::new(a, Timestamp::new(5), vec![Value::Int(1), Value::str("q")]);
        let stamped = e.with_arrival(ArrivalSeq::new(17));
        assert_eq!(stamped.arrival(), ArrivalSeq::new(17));
        assert_eq!(stamped.ts(), e.ts());
        assert_eq!(stamped.attrs(), e.attrs());
    }

    #[test]
    fn validate_checks_arity_and_kinds() {
        let (reg, a) = reg();
        let ok = Event::new(a, Timestamp::new(1), vec![Value::Int(1), Value::str("x")]);
        assert!(ok.validate(&reg));
        let wrong_arity = Event::new(a, Timestamp::new(1), vec![Value::Int(1)]);
        assert!(!wrong_arity.validate(&reg));
        let wrong_kind = Event::new(a, Timestamp::new(1), vec![Value::str("x"), Value::str("y")]);
        assert!(!wrong_kind.validate(&reg));
    }

    #[test]
    fn event_id_display() {
        assert_eq!(EventId::new(12).to_string(), "e12");
    }
}
