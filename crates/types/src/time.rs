//! Logical time: occurrence timestamps, durations, and arrival sequence
//! numbers.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A logical occurrence timestamp assigned by the event source.
///
/// Timestamps are opaque unsigned ticks; the unit (milliseconds, RFID reader
/// cycles, ...) is workload-defined. Query windows ([`Duration`]) are
/// expressed in the same unit.
///
/// ```
/// use sequin_types::{Timestamp, Duration};
/// let t = Timestamp::new(100);
/// assert_eq!(t + Duration::new(20), Timestamp::new(120));
/// assert_eq!(Timestamp::new(120) - t, Duration::new(20));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The smallest representable timestamp.
    pub const MIN: Timestamp = Timestamp(0);
    /// The largest representable timestamp.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Creates a timestamp from raw ticks.
    #[inline]
    pub const fn new(ticks: u64) -> Self {
        Timestamp(ticks)
    }

    /// Returns the raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating subtraction of a duration, clamping at [`Timestamp::MIN`].
    ///
    /// This is the operation used by purge-threshold computations
    /// (`clock − W − K`), where early in the stream the threshold would
    /// otherwise underflow.
    #[inline]
    pub const fn saturating_sub(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_sub(d.0))
    }

    /// Saturating addition of a duration, clamping at [`Timestamp::MAX`].
    #[inline]
    pub const fn saturating_add(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_add(d.0))
    }

    /// Distance to another timestamp, regardless of order.
    #[inline]
    pub const fn abs_diff(self, other: Timestamp) -> Duration {
        Duration(self.0.abs_diff(other.0))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u64> for Timestamp {
    fn from(ticks: u64) -> Self {
        Timestamp(ticks)
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Timestamp {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Duration;
    fn sub(self, rhs: Timestamp) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

/// A span of logical time, in the same ticks as [`Timestamp`].
///
/// Used for query windows (`WITHIN w`) and disorder bounds (`K`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);
    /// The largest representable duration (an effectively unbounded window).
    pub const MAX: Duration = Duration(u64::MAX);

    /// Creates a duration from raw ticks.
    #[inline]
    pub const fn new(ticks: u64) -> Self {
        Duration(ticks)
    }

    /// Returns the raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating addition of two durations.
    #[inline]
    pub const fn saturating_add(self, other: Duration) -> Duration {
        Duration(self.0.saturating_add(other.0))
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}t", self.0)
    }
}

impl From<u64> for Duration {
    fn from(ticks: u64) -> Self {
        Duration(ticks)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

/// The position of an event in the *arrival* order at the engine.
///
/// Arrival sequence numbers are assigned consecutively by the ingestion
/// layer; they are strictly increasing even when timestamps are not. An
/// event `e` arrived "out of order" when some event with a larger arrival
/// sequence number has a smaller timestamp than `e`... more precisely, `e`
/// itself is *late* when an earlier-arriving event had a larger timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ArrivalSeq(u64);

impl ArrivalSeq {
    /// Creates an arrival sequence number.
    #[inline]
    pub const fn new(n: u64) -> Self {
        ArrivalSeq(n)
    }

    /// Returns the raw sequence number.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the next sequence number.
    #[inline]
    pub const fn next(self) -> ArrivalSeq {
        ArrivalSeq(self.0 + 1)
    }
}

impl fmt::Display for ArrivalSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_arithmetic_roundtrips() {
        let t = Timestamp::new(50);
        let d = Duration::new(25);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.saturating_add(d).ticks(), 75);
    }

    #[test]
    fn saturating_sub_clamps_at_zero() {
        let t = Timestamp::new(10);
        assert_eq!(t.saturating_sub(Duration::new(100)), Timestamp::MIN);
        assert_eq!(t.saturating_sub(Duration::new(3)), Timestamp::new(7));
    }

    #[test]
    fn saturating_add_clamps_at_max() {
        assert_eq!(
            Timestamp::MAX.saturating_add(Duration::new(1)),
            Timestamp::MAX
        );
    }

    #[test]
    fn abs_diff_is_symmetric() {
        let a = Timestamp::new(3);
        let b = Timestamp::new(9);
        assert_eq!(a.abs_diff(b), Duration::new(6));
        assert_eq!(b.abs_diff(a), Duration::new(6));
    }

    #[test]
    fn timestamps_order_by_ticks() {
        assert!(Timestamp::new(1) < Timestamp::new(2));
        assert!(Timestamp::MIN < Timestamp::MAX);
    }

    #[test]
    fn arrival_seq_next_increments() {
        let s = ArrivalSeq::new(7);
        assert_eq!(s.next().get(), 8);
        assert!(s < s.next());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Timestamp::new(5).to_string(), "t5");
        assert_eq!(Duration::new(5).to_string(), "5t");
        assert_eq!(ArrivalSeq::new(5).to_string(), "#5");
    }

    #[test]
    fn duration_addition() {
        assert_eq!(Duration::new(2) + Duration::new(3), Duration::new(5));
        assert_eq!(
            Duration::MAX.saturating_add(Duration::new(1)),
            Duration::MAX
        );
    }
}
