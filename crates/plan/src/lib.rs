//! # sequin-plan
//!
//! A shared-state multi-query compiler for sequence pattern queries.
//!
//! Registering thousands of standing queries as isolated engines makes
//! every arrival pay the full per-query cost: one stack set, one
//! insertion, one construction walk per query, even for queries whose
//! pattern cannot possibly involve the event's type. This crate compiles
//! a set of analyzed [`Query`] values (plus a registration *epoch* per
//! query, see below) into one [`SharedPlan`] that the shared evaluator in
//! `sequin-engine` executes:
//!
//! * **Predicate pushdown / stack pooling.** Each positive slot is
//!   described by a [`SlotSig`]: accepted event types, the canonicalized
//!   single-event predicates evaluable at insert time, the partition key
//!   field (when the query shards by an equality chain) and the epoch.
//!   Slots with identical signatures — across queries — share one pooled
//!   AIS stack: `SEQ(A a, B b, C c)` and `SEQ(A a, B b, D d)` keep one
//!   `A` stack and one `B` stack between them, and a slot's local
//!   predicates are evaluated once per arrival rather than once per
//!   query.
//! * **Common-prefix sharing.** Queries whose prefix slots (every
//!   positive but the last) resolve to the same pooled stacks, the same
//!   window, and the same canonicalized intra-prefix predicates form a
//!   [`PrefixGroup`]: the evaluator enumerates partial matches over the
//!   shared prefix once and *forks* each partial out to every member's
//!   final-slot scan.
//! * **Event-type routing.** [`SharedPlan::routing`] maps each event
//!   type to exactly the pooled stacks and negation-holding queries that
//!   care about it, so an arrival touches plan nodes proportional to the
//!   *interested* queries, not the registered ones.
//!
//! The compiler is pure: it never holds event state. The evaluator owns
//! the stacks and reconciles them across incremental recompiles by
//! signature equality, which is what makes `SUBSCRIBE` cheap at runtime.
//!
//! ## Epochs
//!
//! Byte-identical equivalence with independent evaluation requires that a
//! query subscribed mid-stream must not see events that arrived before
//! its registration (a fresh independent engine would not). Queries
//! registered at the same stream position share an epoch; the epoch is
//! part of every [`SlotSig`], so stacks are only ever pooled between
//! queries with identical arrival histories.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

use sequin_query::{Expr, Predicate, Query};
use sequin_types::codec::fnv1a64;
use sequin_types::{Duration, EventTypeId, FieldId};

/// One query as seen by the compiler.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// The analyzed query.
    pub query: Arc<Query>,
    /// Registration epoch (dense index; queries registered at the same
    /// stream position share one).
    pub epoch: usize,
    /// False once unregistered: the query keeps its dense id (so output
    /// tags and snapshots stay aligned) but owns no plan nodes.
    pub active: bool,
}

/// Identity of a pooled stack: two (query, slot) pairs with equal
/// signatures are served by one physical stack.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SlotSig {
    /// Registration epoch of the owning queries.
    pub epoch: usize,
    /// Accepted event types, sorted.
    pub types: Vec<EventTypeId>,
    /// Canonicalized insert-time (single-event) predicates, in query
    /// order — order matters so pooled evaluation replicates the
    /// independent engines' short-circuit accounting exactly.
    pub local_preds: Vec<String>,
    /// Partition-key field for this slot when the owning query shards by
    /// an equality chain (and partitioning is enabled).
    pub partition: Option<FieldId>,
}

/// A (query, slot) pair referencing a pooled stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackRef {
    /// Dense query index.
    pub query: usize,
    /// Positive slot within that query.
    pub slot: usize,
}

/// A pooled stack and everything anchored on it.
#[derive(Debug, Clone)]
pub struct StackNode {
    /// The pooling signature.
    pub sig: SlotSig,
    /// Every (query, slot) served by this stack.
    pub refs: Vec<StackRef>,
    /// Slot-local predicates of a representative referencing query,
    /// evaluated once per arriving candidate (predicate pushdown). All
    /// refs agree on these by signature equality.
    pub local_preds: Vec<Predicate>,
    /// Representative full-list component index for the local-predicate
    /// binding.
    pub local_comp: usize,
    /// Representative component-list length for the binding width.
    pub local_components: usize,
    /// Prefix-group anchors hosted here: `(group index, prefix position)`
    /// pairs whose shared enumeration starts when an event lands in this
    /// stack.
    pub shared_anchors: Vec<(usize, usize)>,
    /// Per-query construction anchors not covered by a group (final
    /// slots, ungrouped queries).
    pub plain_refs: Vec<StackRef>,
}

/// How one bind step inside a shared prefix walk is accounted for one
/// group member (see [`BindPlan`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindEntry {
    /// A group-common predicate: index into [`PrefixGroup::common`].
    Common(usize),
    /// A member-private predicate spanning into the member's final slot —
    /// undecidable during the prefix walk (the final slot binds last),
    /// but the independent engine still counts the attempt.
    Spanning,
}

/// Predicate bookkeeping for binding one prefix position during the
/// shared walk: which common predicates to evaluate, and — per member —
/// the exact short-circuit accounting the member's independent engine
/// would produce.
#[derive(Debug, Clone, Default)]
pub struct BindPlan {
    /// Indices into [`PrefixGroup::common`] of predicates referencing the
    /// bound component (evaluated once, on the representative binding).
    pub common_touching: Vec<usize>,
    /// Per member (in [`PrefixGroup::members`] order): the member's
    /// predicates referencing the bound component, in the member's own
    /// declaration order.
    pub per_member: Vec<Vec<BindEntry>>,
}

/// One member of a prefix group.
#[derive(Debug, Clone)]
pub struct GroupMember {
    /// Dense query index.
    pub query: usize,
    /// Pooled stack holding the member's final slot.
    pub final_stack: usize,
    /// Partition-key field of the member's final slot, if sharded.
    pub final_partition_field: Option<FieldId>,
}

/// Queries sharing a common prefix: one shared partial-match enumeration
/// over [`PrefixGroup::prefix_stacks`], forked to each member's final
/// slot.
#[derive(Debug, Clone)]
pub struct PrefixGroup {
    /// Shared window (part of the grouping key).
    pub window: Duration,
    /// Pooled stack per prefix position `0..prefix_len`.
    pub prefix_stacks: Vec<usize>,
    /// The representative member's intra-prefix predicates, in
    /// declaration order (identical, after canonicalization, for every
    /// member — that is the grouping condition).
    pub common: Vec<Predicate>,
    /// Representative query (used for predicate bindings).
    pub rep: Arc<Query>,
    /// Per prefix position: the representative's full-list component
    /// index (binding slot for [`PrefixGroup::common`]).
    pub rep_comp_of_pos: Vec<usize>,
    /// Per prefix position: predicate bookkeeping for the bind.
    pub binds: Vec<BindPlan>,
    /// Partition-key fields of the prefix positions, if sharded
    /// (signature equality makes these member-independent).
    pub partition_fields: Option<Vec<FieldId>>,
    /// The members, ascending by query index.
    pub members: Vec<GroupMember>,
}

impl PrefixGroup {
    /// Number of shared prefix positions.
    pub fn prefix_len(&self) -> usize {
        self.prefix_stacks.len()
    }
}

/// Per-event-type routing entry.
#[derive(Debug, Clone, Default)]
pub struct RouteEntry {
    /// Pooled stacks that accept this type.
    pub stacks: Vec<usize>,
    /// Queries with a negation matching this type.
    pub neg_queries: Vec<usize>,
}

/// Per-query node of the lowered plan.
#[derive(Debug, Clone)]
pub struct QueryNode {
    /// The analyzed query.
    pub query: Arc<Query>,
    /// Registration epoch.
    pub epoch: usize,
    /// Pooled stack index per positive slot (empty when inactive).
    pub stack_of_slot: Vec<usize>,
    /// False once unregistered.
    pub active: bool,
}

/// The lowered shared plan for a query set.
#[derive(Debug, Clone, Default)]
pub struct SharedPlan {
    /// Per-query nodes, dense by registration index.
    pub queries: Vec<QueryNode>,
    /// Pooled stacks.
    pub stacks: Vec<StackNode>,
    /// Common-prefix groups.
    pub groups: Vec<PrefixGroup>,
    /// Event-type → interested plan nodes.
    pub routing: HashMap<EventTypeId, RouteEntry>,
}

impl SharedPlan {
    /// Number of active queries whose prefix enumeration is shared with
    /// at least one other query.
    pub fn grouped_queries(&self) -> usize {
        self.groups.iter().map(|g| g.members.len()).sum()
    }
}

/// A stable identifier for a query, derived from its normalized form:
/// independent of registration order, whitespace, and variable spelling
/// (two queries with [`Query::normalized_eq`] get the same id). Used to
/// key per-query metrics so dashboards survive re-registration.
pub fn stable_query_id(query: &Query) -> u64 {
    let mut s = String::new();
    for c in query.components() {
        if c.negated {
            s.push('!');
        }
        for ty in &c.types {
            let _ = write!(s, "{}|", ty.index());
        }
        s.push(';');
    }
    let _ = write!(s, "W{}", query.window().ticks());
    for p in query.predicates() {
        s.push('&');
        s.push_str(&canon_pred(query, p));
    }
    for n in query.negations() {
        let _ = write!(s, "N{}:{:?}:{:?}:{:?}", n.comp, n.types, n.left, n.right);
        for p in &n.predicates {
            s.push('&');
            s.push_str(&canon_pred(query, p));
        }
    }
    let _ = write!(s, "{:?}{:?}", query.projections(), query.partition());
    fnv1a64(s.as_bytes())
}

/// Renders `expr` canonically, naming the component bound at each
/// reference via `token` (positive-position based), so structurally equal
/// predicates from different queries compare equal as strings.
fn canon_expr(expr: &Expr, token: &dyn Fn(usize) -> String, out: &mut String) {
    match expr {
        Expr::Const(v) => {
            let _ = write!(out, "{v:?}");
        }
        Expr::Attr { comp, field } => {
            let _ = write!(out, "{}.a{}", token(*comp), field.index());
        }
        Expr::Ts(comp) => {
            let _ = write!(out, "{}.ts", token(*comp));
        }
        Expr::Id(comp) => {
            let _ = write!(out, "{}.id", token(*comp));
        }
        Expr::Unary { op, expr } => {
            let _ = write!(out, "({op:?} ");
            canon_expr(expr, token, out);
            out.push(')');
        }
        Expr::Binary { op, lhs, rhs } => {
            let _ = write!(out, "({op:?} ");
            canon_expr(lhs, token, out);
            out.push(' ');
            canon_expr(rhs, token, out);
            out.push(')');
        }
    }
}

fn canon_pred(query: &Query, pred: &Predicate) -> String {
    // map full-list component index -> positive position
    let pos_of: HashMap<usize, usize> = (0..query.positive_len())
        .map(|p| (query.positive_comp(p), p))
        .collect();
    let token = move |comp: usize| match pos_of.get(&comp) {
        Some(p) => format!("p{p}"),
        None => format!("n{comp}"), // unreachable for positive predicates
    };
    let mut s = String::new();
    canon_expr(pred.expr(), &token, &mut s);
    s
}

fn canon_local_pred(pred: &Predicate) -> String {
    // a single-component predicate: the position is implied by the slot
    let token = |_: usize| "e".to_string();
    let mut s = String::new();
    canon_expr(pred.expr(), &token, &mut s);
    s
}

fn slot_sig(query: &Query, slot: usize, epoch: usize, partitioned: bool) -> SlotSig {
    let mut types = query.positive_types(slot).to_vec();
    types.sort();
    types.dedup();
    let local_preds = query
        .local_predicates(slot)
        .iter()
        .map(|p| canon_local_pred(p))
        .collect();
    let partition = if partitioned {
        query.partition().map(|s| s.fields[slot])
    } else {
        None
    };
    SlotSig {
        epoch,
        types,
        local_preds,
        partition,
    }
}

/// Compiles `specs` into a [`SharedPlan`].
///
/// `partitioned` mirrors the engine configuration flag: when false, no
/// slot carries a partition key (matching unpartitioned evaluation).
///
/// Compilation is deterministic in the order of `specs`; the evaluator
/// carries stack contents across recompiles by [`SlotSig`] equality.
pub fn compile(specs: &[QuerySpec], partitioned: bool) -> SharedPlan {
    let mut stacks: Vec<StackNode> = Vec::new();
    let mut sig_ix: HashMap<SlotSig, usize> = HashMap::new();
    let mut queries: Vec<QueryNode> = Vec::new();

    // 1. intern pooled stacks
    for (qix, spec) in specs.iter().enumerate() {
        let mut stack_of_slot = Vec::new();
        if spec.active {
            let q = &spec.query;
            for slot in 0..q.positive_len() {
                let sig = slot_sig(q, slot, spec.epoch, partitioned);
                let six = *sig_ix.entry(sig.clone()).or_insert_with(|| {
                    stacks.push(StackNode {
                        sig,
                        refs: Vec::new(),
                        local_preds: q.local_predicates(slot).into_iter().cloned().collect(),
                        local_comp: q.positive_comp(slot),
                        local_components: q.components().len(),
                        shared_anchors: Vec::new(),
                        plain_refs: Vec::new(),
                    });
                    stacks.len() - 1
                });
                stacks[six].refs.push(StackRef { query: qix, slot });
                stack_of_slot.push(six);
            }
        }
        queries.push(QueryNode {
            query: Arc::clone(&spec.query),
            epoch: spec.epoch,
            stack_of_slot,
            active: spec.active,
        });
    }

    // 2. group queries by (prefix stacks, window, intra-prefix predicates)
    type GroupKey = (Vec<usize>, u64, Vec<String>);
    let mut group_members: HashMap<GroupKey, Vec<usize>> = HashMap::new();
    let mut key_order: Vec<GroupKey> = Vec::new();
    for (qix, node) in queries.iter().enumerate() {
        if !node.active || node.query.positive_len() < 2 {
            continue;
        }
        let q = &node.query;
        let m = q.positive_len();
        let prefix_stacks: Vec<usize> = node.stack_of_slot[..m - 1].to_vec();
        let final_comp = q.positive_comp(m - 1);
        let intra: Vec<String> = q
            .predicates()
            .iter()
            .filter(|p| !p.mask().contains(final_comp))
            .map(|p| canon_pred(q, p))
            .collect();
        let key = (prefix_stacks, q.window().ticks(), intra);
        let members = group_members.entry(key.clone()).or_insert_with(|| {
            key_order.push(key);
            Vec::new()
        });
        members.push(qix);
    }

    let mut groups: Vec<PrefixGroup> = Vec::new();
    for key in key_order {
        let members = &group_members[&key];
        if members.len() < 2 {
            continue;
        }
        let rep_ix = members[0];
        let rep = Arc::clone(&queries[rep_ix].query);
        let m = rep.positive_len();
        let prefix_len = m - 1;
        let rep_final_comp = rep.positive_comp(prefix_len);
        let common: Vec<Predicate> = rep
            .predicates()
            .iter()
            .filter(|p| !p.mask().contains(rep_final_comp))
            .cloned()
            .collect();
        let rep_comp_of_pos: Vec<usize> = (0..prefix_len).map(|p| rep.positive_comp(p)).collect();
        let mut binds: Vec<BindPlan> = Vec::new();
        for (pos, &rep_comp) in rep_comp_of_pos.iter().enumerate() {
            let common_touching: Vec<usize> = common
                .iter()
                .enumerate()
                .filter(|(_, p)| p.mask().contains(rep_comp))
                .map(|(i, _)| i)
                .collect();
            let mut per_member = Vec::new();
            for &mix in members.iter() {
                let mq = &queries[mix].query;
                let m_final = mq.positive_comp(mq.positive_len() - 1);
                let m_comp = mq.positive_comp(pos);
                let mut entries = Vec::new();
                let mut common_counter = 0usize;
                for p in mq.predicates() {
                    let is_common = !p.mask().contains(m_final);
                    if p.mask().contains(m_comp) {
                        entries.push(if is_common {
                            BindEntry::Common(common_counter)
                        } else {
                            BindEntry::Spanning
                        });
                    }
                    if is_common {
                        common_counter += 1;
                    }
                }
                per_member.push(entries);
            }
            binds.push(BindPlan {
                common_touching,
                per_member,
            });
        }
        let partition_fields = if partitioned {
            rep.partition().map(|s| s.fields[..prefix_len].to_vec())
        } else {
            None
        };
        let group_ix = groups.len();
        for (pos, &six) in key.0.iter().enumerate() {
            stacks[six].shared_anchors.push((group_ix, pos));
        }
        let group_members_built: Vec<GroupMember> = members
            .iter()
            .map(|&mix| {
                let mq = &queries[mix].query;
                let final_slot = mq.positive_len() - 1;
                GroupMember {
                    query: mix,
                    final_stack: queries[mix].stack_of_slot[final_slot],
                    final_partition_field: if partitioned {
                        mq.partition().map(|s| s.fields[final_slot])
                    } else {
                        None
                    },
                }
            })
            .collect();
        groups.push(PrefixGroup {
            window: rep.window(),
            prefix_stacks: key.0,
            common,
            rep,
            rep_comp_of_pos,
            binds,
            partition_fields,
            members: group_members_built,
        });
    }

    // 3. plain refs: anchors not covered by a group's shared prefix walk
    let grouped: HashMap<usize, usize> = groups
        .iter()
        .enumerate()
        .flat_map(|(gix, g)| g.members.iter().map(move |m| (m.query, gix)))
        .collect();
    for node in stacks.iter_mut() {
        let refs = node.refs.clone();
        for r in refs {
            let covered = grouped.contains_key(&r.query)
                && r.slot + 1 < queries[r.query].query.positive_len();
            if !covered {
                node.plain_refs.push(r);
            }
        }
    }

    // 4. event-type routing index
    let mut routing: HashMap<EventTypeId, RouteEntry> = HashMap::new();
    for (six, node) in stacks.iter().enumerate() {
        for &ty in &node.sig.types {
            routing.entry(ty).or_default().stacks.push(six);
        }
    }
    for (qix, node) in queries.iter().enumerate() {
        if !node.active {
            continue;
        }
        for neg in node.query.negations() {
            for &ty in &neg.types {
                let entry = routing.entry(ty).or_default();
                if entry.neg_queries.last() != Some(&qix) && !entry.neg_queries.contains(&qix) {
                    entry.neg_queries.push(qix);
                }
            }
        }
    }

    SharedPlan {
        queries,
        stacks,
        groups,
        routing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sequin_query::parse;
    use sequin_types::{TypeRegistry, ValueKind};

    fn registry() -> TypeRegistry {
        let mut reg = TypeRegistry::new();
        for name in ["A", "B", "C", "D", "N"] {
            reg.declare(name, &[("x", ValueKind::Int), ("tag", ValueKind::Int)])
                .unwrap();
        }
        reg
    }

    fn spec(text: &str, reg: &TypeRegistry) -> QuerySpec {
        QuerySpec {
            query: parse(text, reg).unwrap(),
            epoch: 0,
            active: true,
        }
    }

    #[test]
    fn common_prefix_pools_stacks_and_forms_group() {
        let reg = registry();
        let specs = [
            spec("PATTERN SEQ(A a, B b, C c) WITHIN 50", &reg),
            spec("PATTERN SEQ(A a, B b, D d) WITHIN 50", &reg),
        ];
        let plan = compile(&specs, true);
        // A and B stacks shared; C and D private: 4 stacks, not 6
        assert_eq!(plan.stacks.len(), 4);
        assert_eq!(plan.groups.len(), 1);
        let g = &plan.groups[0];
        assert_eq!(g.prefix_len(), 2);
        assert_eq!(g.members.len(), 2);
        assert_eq!(plan.grouped_queries(), 2);
        // prefix anchors are shared, final anchors stay per-query
        let a_stack = &plan.stacks[plan.queries[0].stack_of_slot[0]];
        assert_eq!(a_stack.shared_anchors, vec![(0, 0)]);
        assert!(a_stack.plain_refs.is_empty());
        let c_stack = &plan.stacks[plan.queries[0].stack_of_slot[2]];
        assert_eq!(c_stack.plain_refs, vec![StackRef { query: 0, slot: 2 }]);
    }

    #[test]
    fn window_mismatch_blocks_grouping_but_not_pooling() {
        let reg = registry();
        let specs = [
            spec("PATTERN SEQ(A a, B b, C c) WITHIN 50", &reg),
            spec("PATTERN SEQ(A a, B b, C c) WITHIN 60", &reg),
        ];
        let plan = compile(&specs, true);
        // stacks pool regardless of window (stack content is window-free)
        assert_eq!(plan.stacks.len(), 3);
        // but the shared walk depends on the window, so no group forms
        assert!(plan.groups.is_empty());
        // every anchor is plain
        let a_stack = &plan.stacks[0];
        assert_eq!(a_stack.plain_refs.len(), a_stack.refs.len());
    }

    #[test]
    fn local_predicates_split_stacks() {
        let reg = registry();
        let specs = [
            spec("PATTERN SEQ(A a, B b) WHERE a.x > 5 WITHIN 50", &reg),
            spec("PATTERN SEQ(A a, B b) WHERE a.x > 6 WITHIN 50", &reg),
            spec("PATTERN SEQ(A a, B b) WHERE a.x > 5 WITHIN 50", &reg),
        ];
        let plan = compile(&specs, true);
        // A stacks: {x>5} shared by q0,q2; {x>6} private; B shared by all
        assert_eq!(plan.stacks.len(), 3);
        let a5 = &plan.stacks[plan.queries[0].stack_of_slot[0]];
        assert_eq!(a5.refs.len(), 2);
        assert_eq!(a5.local_preds.len(), 1);
    }

    #[test]
    fn routing_only_lists_interested_nodes() {
        let reg = registry();
        let specs = [
            spec("PATTERN SEQ(A a, B b) WITHIN 50", &reg),
            spec("PATTERN SEQ(C c, !N n, D d) WITHIN 50", &reg),
        ];
        let plan = compile(&specs, true);
        let a = reg.lookup("A").unwrap();
        let n = reg.lookup("N").unwrap();
        let c = reg.lookup("C").unwrap();
        assert_eq!(plan.routing[&a].stacks.len(), 1);
        assert!(plan.routing[&a].neg_queries.is_empty());
        assert_eq!(plan.routing[&n].neg_queries, vec![1]);
        assert!(plan.routing[&n].stacks.is_empty());
        assert_eq!(plan.routing[&c].stacks.len(), 1);
        let b_unused = reg.lookup("N").unwrap();
        assert!(plan.routing.contains_key(&b_unused));
    }

    #[test]
    fn epochs_segregate_stacks() {
        let reg = registry();
        let mut s1 = spec("PATTERN SEQ(A a, B b) WITHIN 50", &reg);
        let mut s2 = spec("PATTERN SEQ(A a, B b) WITHIN 50", &reg);
        s1.epoch = 0;
        s2.epoch = 1;
        let plan = compile(&[s1, s2], true);
        assert_eq!(plan.stacks.len(), 4, "different epochs never pool");
        assert!(plan.groups.is_empty());
    }

    #[test]
    fn inactive_queries_own_no_plan_nodes() {
        let reg = registry();
        let mut s1 = spec("PATTERN SEQ(A a, B b) WITHIN 50", &reg);
        let s2 = spec("PATTERN SEQ(A a, B b) WITHIN 50", &reg);
        s1.active = false;
        let plan = compile(&[s1, s2], true);
        assert_eq!(plan.queries.len(), 2);
        assert!(plan.queries[0].stack_of_slot.is_empty());
        assert_eq!(plan.stacks.len(), 2);
        for s in &plan.stacks {
            assert_eq!(s.refs.len(), 1);
        }
    }

    #[test]
    fn partition_scheme_is_part_of_the_signature() {
        let reg = registry();
        let joined = spec("PATTERN SEQ(A a, B b) WHERE a.tag == b.tag WITHIN 50", &reg);
        let plain = spec("PATTERN SEQ(A a, B b) WITHIN 50", &reg);
        let plan = compile(&[joined.clone(), plain.clone()], true);
        assert_eq!(plan.stacks.len(), 4, "keyed and unkeyed slots never pool");
        let flat = compile(&[joined, plain], false);
        assert_eq!(flat.stacks.len(), 2, "unpartitioned evaluation pools them");
    }

    #[test]
    fn stable_query_id_ignores_variable_spelling() {
        let reg = registry();
        let q1 = parse("PATTERN SEQ(A a, B b) WHERE a.x == b.x WITHIN 50", &reg).unwrap();
        let q2 = parse("PATTERN SEQ(A  p,   B q) WHERE p.x == q.x WITHIN 50", &reg).unwrap();
        let q3 = parse("PATTERN SEQ(A a, B b) WHERE a.x == b.x WITHIN 51", &reg).unwrap();
        assert!(q1.normalized_eq(&q2));
        assert!(!q1.normalized_eq(&q3));
        assert_eq!(stable_query_id(&q1), stable_query_id(&q2));
        assert_ne!(stable_query_id(&q1), stable_query_id(&q3));
    }

    #[test]
    fn spanning_predicates_do_not_block_grouping() {
        let reg = registry();
        let specs = [
            spec(
                "PATTERN SEQ(A a, B b, C c) WHERE a.x == b.x AND a.x < c.x WITHIN 50",
                &reg,
            ),
            spec(
                "PATTERN SEQ(A a, B b, D d) WHERE a.x == b.x WITHIN 50",
                &reg,
            ),
        ];
        let plan = compile(&specs, true);
        assert_eq!(plan.groups.len(), 1);
        let g = &plan.groups[0];
        assert_eq!(g.common.len(), 1, "a.x == b.x is the shared predicate");
        // at position 0 (binding a): member 0 sees both predicates, the
        // second one spanning; member 1 sees only the common one
        assert_eq!(
            g.binds[0].per_member[0],
            vec![BindEntry::Common(0), BindEntry::Spanning]
        );
        assert_eq!(g.binds[0].per_member[1], vec![BindEntry::Common(0)]);
    }
}
