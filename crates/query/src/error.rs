//! Errors for parsing and analyzing queries.

use std::error::Error;
use std::fmt;

/// A syntax error, with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    offset: usize,
    message: String,
}

impl ParseError {
    pub(crate) fn new(offset: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            offset,
            message: message.into(),
        }
    }

    /// Byte offset in the query text where the error was detected.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// The diagnostic message (without position information).
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.offset)
    }
}

impl Error for ParseError {}

/// A semantic error found while resolving a parsed query, carrying the
/// byte offset of the offending construct when the AST records one
/// (whole-query conditions such as a zero window have no position).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyzeError {
    kind: AnalyzeErrorKind,
    offset: Option<usize>,
}

impl AnalyzeError {
    /// What was rejected.
    pub fn kind(&self) -> &AnalyzeErrorKind {
        &self.kind
    }

    /// Byte offset in the query text of the construct that failed
    /// analysis, when one is known.
    pub fn offset(&self) -> Option<usize> {
        self.offset
    }

    /// The diagnostic message (without position information).
    pub fn message(&self) -> String {
        self.kind.to_string()
    }
}

impl From<AnalyzeErrorKind> for AnalyzeError {
    fn from(kind: AnalyzeErrorKind) -> AnalyzeError {
        AnalyzeError { kind, offset: None }
    }
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(off) => write!(f, "{} (at byte {off})", self.kind),
            None => self.kind.fmt(f),
        }
    }
}

impl Error for AnalyzeError {}

/// The conditions semantic analysis rejects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalyzeErrorKind {
    /// The pattern references an event type not in the registry.
    UnknownType(String),
    /// An expression or projection references an undeclared variable.
    UnknownVariable(String),
    /// A referenced field does not exist on the variable's event type.
    UnknownField {
        /// Variable whose type was consulted.
        var: String,
        /// The missing field.
        field: String,
    },
    /// Two components bind the same variable name.
    DuplicateVariable(String),
    /// The pattern has no positive (non-negated) component.
    NoPositiveComponent,
    /// Two negated components are adjacent (ambiguous flanks).
    AdjacentNegations,
    /// The pattern exceeds the 64-component limit.
    TooManyComponents(usize),
    /// A projection references a negated component (never bound in output).
    ProjectsNegated(String),
    /// The window must be positive.
    ZeroWindow,
    /// A `WHERE` conjunct references more than one negated component.
    PredicateSpansNegations,
    /// A field referenced through an alternation variable does not resolve
    /// to the same position and kind in every alternate type.
    AmbiguousField {
        /// The alternation variable.
        var: String,
        /// The field name.
        field: String,
    },
}

impl AnalyzeErrorKind {
    /// Locates this kind at `offset` in the query text.
    pub(crate) fn at(self, offset: usize) -> AnalyzeError {
        AnalyzeError {
            kind: self,
            offset: Some(offset),
        }
    }
}

impl fmt::Display for AnalyzeErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeErrorKind::UnknownType(t) => write!(f, "unknown event type `{t}`"),
            AnalyzeErrorKind::UnknownVariable(v) => write!(f, "unknown variable `{v}`"),
            AnalyzeErrorKind::UnknownField { var, field } => {
                write!(f, "variable `{var}` has no field `{field}`")
            }
            AnalyzeErrorKind::DuplicateVariable(v) => {
                write!(f, "variable `{v}` bound by more than one component")
            }
            AnalyzeErrorKind::NoPositiveComponent => {
                write!(f, "pattern needs at least one positive component")
            }
            AnalyzeErrorKind::AdjacentNegations => {
                write!(f, "two adjacent negated components are ambiguous")
            }
            AnalyzeErrorKind::TooManyComponents(n) => {
                write!(f, "pattern has {n} components, maximum is 64")
            }
            AnalyzeErrorKind::ProjectsNegated(v) => {
                write!(f, "cannot RETURN fields of negated component `{v}`")
            }
            AnalyzeErrorKind::ZeroWindow => write!(f, "WITHIN window must be positive"),
            AnalyzeErrorKind::PredicateSpansNegations => {
                write!(
                    f,
                    "a WHERE conjunct may reference at most one negated component"
                )
            }
            AnalyzeErrorKind::AmbiguousField { var, field } => {
                write!(
                    f,
                    "field `{field}` of alternation variable `{var}` must have the same \
                     position and kind in every alternate type"
                )
            }
        }
    }
}

/// Either kind of query-compilation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Syntax error.
    Parse(ParseError),
    /// Semantic error.
    Analyze(AnalyzeError),
}

impl QueryError {
    /// Byte offset in the query text of the failure, when known (always
    /// known for parse errors).
    pub fn offset(&self) -> Option<usize> {
        match self {
            QueryError::Parse(e) => Some(e.offset()),
            QueryError::Analyze(e) => e.offset(),
        }
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse(e) => write!(f, "parse error: {e}"),
            QueryError::Analyze(e) => write!(f, "analysis error: {e}"),
        }
    }
}

impl Error for QueryError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            QueryError::Parse(e) => Some(e),
            QueryError::Analyze(e) => Some(e),
        }
    }
}

impl From<ParseError> for QueryError {
    fn from(e: ParseError) -> Self {
        QueryError::Parse(e)
    }
}

impl From<AnalyzeError> for QueryError {
    fn from(e: AnalyzeError) -> Self {
        QueryError::Analyze(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_reports_offset() {
        let e = ParseError::new(7, "boom");
        assert_eq!(e.offset(), 7);
        assert_eq!(e.message(), "boom");
        assert!(e.to_string().contains("byte 7"));
    }

    #[test]
    fn query_error_wraps_sources() {
        let qe: QueryError = ParseError::new(0, "x").into();
        assert!(qe.source().is_some());
        assert_eq!(qe.offset(), Some(0));
        let qe: QueryError = AnalyzeError::from(AnalyzeErrorKind::ZeroWindow).into();
        assert!(qe.source().is_some());
        assert!(qe.to_string().contains("analysis"));
        assert_eq!(qe.offset(), None);
    }

    #[test]
    fn analyze_error_carries_offset_into_display() {
        let e = AnalyzeErrorKind::UnknownType("Z".into()).at(12);
        assert_eq!(e.offset(), Some(12));
        assert!(e.to_string().contains("(at byte 12)"), "{e}");
        assert_eq!(e.message(), "unknown event type `Z`");
        let bare: AnalyzeError = AnalyzeErrorKind::ZeroWindow.into();
        assert_eq!(bare.offset(), None);
        assert!(!bare.to_string().contains("at byte"));
    }

    #[test]
    fn analyze_error_messages() {
        for e in [
            AnalyzeErrorKind::UnknownType("A".into()),
            AnalyzeErrorKind::UnknownVariable("a".into()),
            AnalyzeErrorKind::UnknownField {
                var: "a".into(),
                field: "x".into(),
            },
            AnalyzeErrorKind::DuplicateVariable("a".into()),
            AnalyzeErrorKind::NoPositiveComponent,
            AnalyzeErrorKind::AdjacentNegations,
            AnalyzeErrorKind::TooManyComponents(99),
            AnalyzeErrorKind::ProjectsNegated("n".into()),
            AnalyzeErrorKind::ZeroWindow,
            AnalyzeErrorKind::PredicateSpansNegations,
            AnalyzeErrorKind::AmbiguousField {
                var: "a".into(),
                field: "x".into(),
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
