//! Errors for parsing and analyzing queries.

use std::error::Error;
use std::fmt;

/// A syntax error, with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    offset: usize,
    message: String,
}

impl ParseError {
    pub(crate) fn new(offset: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            offset,
            message: message.into(),
        }
    }

    /// Byte offset in the query text where the error was detected.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// The diagnostic message (without position information).
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.offset)
    }
}

impl Error for ParseError {}

/// A semantic error found while resolving a parsed query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalyzeError {
    /// The pattern references an event type not in the registry.
    UnknownType(String),
    /// An expression or projection references an undeclared variable.
    UnknownVariable(String),
    /// A referenced field does not exist on the variable's event type.
    UnknownField {
        /// Variable whose type was consulted.
        var: String,
        /// The missing field.
        field: String,
    },
    /// Two components bind the same variable name.
    DuplicateVariable(String),
    /// The pattern has no positive (non-negated) component.
    NoPositiveComponent,
    /// Two negated components are adjacent (ambiguous flanks).
    AdjacentNegations,
    /// The pattern exceeds the 64-component limit.
    TooManyComponents(usize),
    /// A projection references a negated component (never bound in output).
    ProjectsNegated(String),
    /// The window must be positive.
    ZeroWindow,
    /// A `WHERE` conjunct references more than one negated component.
    PredicateSpansNegations,
    /// A field referenced through an alternation variable does not resolve
    /// to the same position and kind in every alternate type.
    AmbiguousField {
        /// The alternation variable.
        var: String,
        /// The field name.
        field: String,
    },
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::UnknownType(t) => write!(f, "unknown event type `{t}`"),
            AnalyzeError::UnknownVariable(v) => write!(f, "unknown variable `{v}`"),
            AnalyzeError::UnknownField { var, field } => {
                write!(f, "variable `{var}` has no field `{field}`")
            }
            AnalyzeError::DuplicateVariable(v) => {
                write!(f, "variable `{v}` bound by more than one component")
            }
            AnalyzeError::NoPositiveComponent => {
                write!(f, "pattern needs at least one positive component")
            }
            AnalyzeError::AdjacentNegations => {
                write!(f, "two adjacent negated components are ambiguous")
            }
            AnalyzeError::TooManyComponents(n) => {
                write!(f, "pattern has {n} components, maximum is 64")
            }
            AnalyzeError::ProjectsNegated(v) => {
                write!(f, "cannot RETURN fields of negated component `{v}`")
            }
            AnalyzeError::ZeroWindow => write!(f, "WITHIN window must be positive"),
            AnalyzeError::PredicateSpansNegations => {
                write!(
                    f,
                    "a WHERE conjunct may reference at most one negated component"
                )
            }
            AnalyzeError::AmbiguousField { var, field } => {
                write!(
                    f,
                    "field `{field}` of alternation variable `{var}` must have the same \
                     position and kind in every alternate type"
                )
            }
        }
    }
}

impl Error for AnalyzeError {}

/// Either kind of query-compilation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Syntax error.
    Parse(ParseError),
    /// Semantic error.
    Analyze(AnalyzeError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse(e) => write!(f, "parse error: {e}"),
            QueryError::Analyze(e) => write!(f, "analysis error: {e}"),
        }
    }
}

impl Error for QueryError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            QueryError::Parse(e) => Some(e),
            QueryError::Analyze(e) => Some(e),
        }
    }
}

impl From<ParseError> for QueryError {
    fn from(e: ParseError) -> Self {
        QueryError::Parse(e)
    }
}

impl From<AnalyzeError> for QueryError {
    fn from(e: AnalyzeError) -> Self {
        QueryError::Analyze(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_reports_offset() {
        let e = ParseError::new(7, "boom");
        assert_eq!(e.offset(), 7);
        assert_eq!(e.message(), "boom");
        assert!(e.to_string().contains("byte 7"));
    }

    #[test]
    fn query_error_wraps_sources() {
        let qe: QueryError = ParseError::new(0, "x").into();
        assert!(qe.source().is_some());
        let qe: QueryError = AnalyzeError::ZeroWindow.into();
        assert!(qe.source().is_some());
        assert!(qe.to_string().contains("analysis"));
    }

    #[test]
    fn analyze_error_messages() {
        for e in [
            AnalyzeError::UnknownType("A".into()),
            AnalyzeError::UnknownVariable("a".into()),
            AnalyzeError::UnknownField {
                var: "a".into(),
                field: "x".into(),
            },
            AnalyzeError::DuplicateVariable("a".into()),
            AnalyzeError::NoPositiveComponent,
            AnalyzeError::AdjacentNegations,
            AnalyzeError::TooManyComponents(99),
            AnalyzeError::ProjectsNegated("n".into()),
            AnalyzeError::ZeroWindow,
            AnalyzeError::PredicateSpansNegations,
            AnalyzeError::AmbiguousField {
                var: "a".into(),
                field: "x".into(),
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
