//! The analyzed, executable query representation.

use std::fmt;
use std::sync::Arc;

use sequin_types::{Duration, EventRef, EventTypeId, FieldId, Value};

use crate::expr::{Binding, ComponentMask, Expr};

/// One resolved `SEQ(...)` component.
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    /// Variable name from the query text (or builder).
    pub var: String,
    /// Resolved event types (more than one = alternation `A|B var`).
    pub types: Vec<EventTypeId>,
    /// Whether the component is negated.
    pub negated: bool,
}

impl Component {
    /// True if an event of `ty` can bind this component.
    pub fn matches_type(&self, ty: EventTypeId) -> bool {
        self.types.contains(&ty)
    }
}

/// A conjunct of the `WHERE` clause, with its referenced-component mask.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    expr: Expr,
    mask: ComponentMask,
}

impl Predicate {
    pub(crate) fn new(expr: Expr) -> Predicate {
        let mask = expr.components();
        Predicate { expr, mask }
    }

    /// The underlying expression.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// Full-list component indices referenced by this predicate.
    pub fn mask(&self) -> ComponentMask {
        self.mask
    }

    /// Evaluates the predicate on a fully or partially bound match.
    ///
    /// `Some(true)`/`Some(false)` once all referenced components are bound;
    /// `None` while undecided.
    pub fn eval(&self, binding: &Binding<'_>) -> Option<bool> {
        self.expr.eval_predicate(binding)
    }

    /// True if the predicate references only `comp` (usable as an
    /// insertion-time pre-filter for that component).
    pub fn is_local_to(&self, comp: usize) -> bool {
        let mut solo = ComponentMask::default();
        solo.insert(comp);
        !self.mask.is_empty() && self.mask.subset_of(solo)
    }
}

/// A `RETURN` item, resolved to a component slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Projection {
    /// `var.field`
    Attr {
        /// Full-list component index.
        comp: usize,
        /// Resolved field.
        field: FieldId,
    },
    /// `var.ts`
    Ts(
        /// Full-list component index.
        usize,
    ),
    /// `var.id`
    Id(
        /// Full-list component index.
        usize,
    ),
}

/// A negated component with its flanks and filter predicates.
#[derive(Debug, Clone, PartialEq)]
pub struct Negation {
    /// Full-list index of the negated component.
    pub comp: usize,
    /// The negated event types (alternation allowed).
    pub types: Vec<EventTypeId>,
    /// Positive-order index of the left flank (`None` = leading negation).
    pub left: Option<usize>,
    /// Positive-order index of the right flank (`None` = trailing negation).
    pub right: Option<usize>,
    /// Predicates referencing this negated component (and positives).
    pub predicates: Vec<Predicate>,
}

impl Negation {
    /// True if an event of `ty` is a candidate negative for this negation.
    pub fn matches_type(&self, ty: EventTypeId) -> bool {
        self.types.contains(&ty)
    }
}

/// Hash-partitioning opportunity discovered by analysis: an equality-join
/// chain covering every positive component (e.g. `a.tag == b.tag AND
/// b.tag == c.tag`). Engines may shard all operator state by this key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionScheme {
    /// For each positive slot (positive order), the field acting as key.
    pub fields: Vec<FieldId>,
    /// For each negation (in [`Query::negations`] order), the key field on
    /// the negated type, when the chain extends to it.
    pub negation_fields: Vec<Option<FieldId>>,
}

/// An analyzed sequence pattern query (see crate docs for semantics).
///
/// The structure is immutable and shareable; engines hold it by `Arc`.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    components: Vec<Component>,
    positives: Vec<usize>,
    window: Duration,
    predicates: Vec<Predicate>,
    negations: Vec<Negation>,
    projections: Vec<Projection>,
    partition: Option<PartitionScheme>,
}

impl Query {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        components: Vec<Component>,
        positives: Vec<usize>,
        window: Duration,
        predicates: Vec<Predicate>,
        negations: Vec<Negation>,
        projections: Vec<Projection>,
        partition: Option<PartitionScheme>,
    ) -> Arc<Query> {
        Arc::new(Query {
            components,
            positives,
            window,
            predicates,
            negations,
            projections,
            partition,
        })
    }

    /// All components in `SEQ` order (positive and negated).
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Number of positive components (the length of a match).
    pub fn positive_len(&self) -> usize {
        self.positives.len()
    }

    /// Full-list index of the positive component at positive-order `p`.
    pub fn positive_comp(&self, p: usize) -> usize {
        self.positives[p]
    }

    /// Event types accepted by the positive component at positive-order
    /// `p` (more than one under alternation).
    pub fn positive_types(&self, p: usize) -> &[EventTypeId] {
        &self.components[self.positives[p]].types
    }

    /// The query window.
    pub fn window(&self) -> Duration {
        self.window
    }

    /// Positive-component predicates (`WHERE` conjuncts not referencing any
    /// negated component).
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// The negated components, in `SEQ` order.
    pub fn negations(&self) -> &[Negation] {
        &self.negations
    }

    /// `RETURN` projections (empty = return event ids of positives).
    pub fn projections(&self) -> &[Projection] {
        &self.projections
    }

    /// The partitioning opportunity, if analysis found one.
    pub fn partition(&self) -> Option<&PartitionScheme> {
        self.partition.as_ref()
    }

    /// True when any component is negated.
    pub fn has_negation(&self) -> bool {
        !self.negations.is_empty()
    }

    /// Event types the query is sensitive to (positive or negated).
    pub fn relevant_types(&self) -> Vec<EventTypeId> {
        let mut tys: Vec<EventTypeId> = self
            .components
            .iter()
            .flat_map(|c| c.types.iter().copied())
            .collect();
        tys.sort();
        tys.dedup();
        tys
    }

    /// Positive-order slots that accept events of type `ty` (an event of
    /// type `ty` is a candidate for each of these stacks).
    pub fn slots_for_type(&self, ty: EventTypeId) -> Vec<usize> {
        (0..self.positive_len())
            .filter(|&p| self.components[self.positives[p]].matches_type(ty))
            .collect()
    }

    /// Predicates local to positive slot `p` — evaluable at insertion time
    /// (the sequence-scan pre-filter optimization).
    pub fn local_predicates(&self, p: usize) -> Vec<&Predicate> {
        let comp = self.positives[p];
        self.predicates
            .iter()
            .filter(|q| q.is_local_to(comp))
            .collect()
    }

    /// Predicates that reference more than one component (must be evaluated
    /// during construction).
    pub fn join_predicates(&self) -> Vec<&Predicate> {
        self.predicates
            .iter()
            .filter(|q| q.mask().iter_ones().count() > 1)
            .collect()
    }

    /// Evaluates the projections over a full positive binding, returning
    /// the output tuple. With no `RETURN` clause, returns the event ids of
    /// the positive components.
    pub fn project(&self, binding: &Binding<'_>) -> Vec<Value> {
        if self.projections.is_empty() {
            return self
                .positives
                .iter()
                .filter_map(|&c| binding.get(c).copied().flatten())
                .map(|e| Value::Int(e.id().get() as i64))
                .collect();
        }
        self.projections
            .iter()
            .map(|p| {
                let expr = match *p {
                    Projection::Attr { comp, field } => Expr::Attr { comp, field },
                    Projection::Ts(comp) => Expr::Ts(comp),
                    Projection::Id(comp) => Expr::Id(comp),
                };
                expr.eval(binding).unwrap_or(Value::Bool(false))
            })
            .collect()
    }

    /// Structural equality modulo variable spelling: two queries are
    /// normalized-equal when they resolve to the same components (types
    /// and negation flags), window, predicates, negations, projections,
    /// and partitioning — regardless of what the variables were named.
    /// Predicates reference components by index, not by name, so this is
    /// exactly "the same executable plan". Multi-query registration uses
    /// it to share one logical query between textually different
    /// subscriptions.
    pub fn normalized_eq(&self, other: &Query) -> bool {
        self.window == other.window
            && self.positives == other.positives
            && self.components.len() == other.components.len()
            && self
                .components
                .iter()
                .zip(&other.components)
                .all(|(a, b)| a.types == b.types && a.negated == b.negated)
            && self.predicates == other.predicates
            && self.negations == other.negations
            && self.projections == other.projections
            && self.partition == other.partition
    }

    /// Builds a full-component binding from positive-order events, for use
    /// with [`Query::project`] and predicate evaluation.
    pub fn binding_from_positives<'a>(&self, events: &'a [EventRef]) -> Vec<Option<&'a EventRef>> {
        let mut binding: Vec<Option<&EventRef>> = vec![None; self.components.len()];
        for (p, ev) in events.iter().enumerate() {
            binding[self.positives[p]] = Some(ev);
        }
        binding
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SEQ(")?;
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if c.negated {
                write!(f, "!")?;
            }
            for (j, ty) in c.types.iter().enumerate() {
                if j > 0 {
                    write!(f, "|")?;
                }
                write!(f, "{ty}")?;
            }
            write!(f, " {}", c.var)?;
        }
        write!(f, ") WITHIN {}", self.window)
    }
}
