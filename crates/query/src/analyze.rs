//! Semantic analysis: resolves a parsed [`QueryAst`] against a
//! [`TypeRegistry`] into an executable [`Query`].

use std::collections::HashMap;

use sequin_types::{Duration, FieldId, TypeRegistry, Value};

use crate::ast::{BinaryOpAst, ExprAst, QueryAst, UnaryOpAst};
use crate::error::{AnalyzeError, AnalyzeErrorKind};
use crate::expr::{BinaryOp, ComponentMask, Expr, UnaryOp};
use crate::query::{Component, Negation, PartitionScheme, Predicate, Projection, Query};

use std::sync::Arc;

/// Resolves `ast` against `registry`.
///
/// # Errors
///
/// See [`AnalyzeError`] for the conditions rejected here: unknown
/// types/variables/fields, duplicate variables, patterns without a positive
/// component, adjacent negations, oversized patterns, projections of
/// negated components, zero windows, and conjuncts spanning several
/// negations.
pub fn analyze(ast: &QueryAst, registry: &TypeRegistry) -> Result<Arc<Query>, AnalyzeError> {
    if ast.components.len() > ComponentMask::CAPACITY {
        return Err(AnalyzeErrorKind::TooManyComponents(ast.components.len()).into());
    }
    if ast.within == 0 {
        return Err(AnalyzeErrorKind::ZeroWindow.into());
    }

    // resolve components
    let mut components = Vec::with_capacity(ast.components.len());
    let mut var_to_comp: HashMap<String, usize> = HashMap::new();
    for (ix, c) in ast.components.iter().enumerate() {
        let mut types = Vec::with_capacity(c.type_names.len());
        for name in &c.type_names {
            let ty = registry
                .lookup(name)
                .ok_or_else(|| AnalyzeErrorKind::UnknownType(name.clone()).at(c.offset))?;
            if !types.contains(&ty) {
                types.push(ty);
            }
        }
        if var_to_comp.insert(c.var.clone(), ix).is_some() {
            return Err(AnalyzeErrorKind::DuplicateVariable(c.var.clone()).at(c.offset));
        }
        components.push(Component {
            var: c.var.clone(),
            types,
            negated: c.negated,
        });
    }

    let positives: Vec<usize> = components
        .iter()
        .enumerate()
        .filter(|(_, c)| !c.negated)
        .map(|(ix, _)| ix)
        .collect();
    if positives.is_empty() {
        return Err(AnalyzeErrorKind::NoPositiveComponent.into());
    }
    for (w, c) in components.windows(2).zip(ast.components.windows(2)) {
        if w[0].negated && w[1].negated {
            return Err(AnalyzeErrorKind::AdjacentNegations.at(c[1].offset));
        }
    }

    // resolve the WHERE clause into conjuncts
    let mut conjuncts = Vec::new();
    if let Some(filter) = &ast.filter {
        split_conjuncts(filter, &mut conjuncts);
    }
    let resolver = Resolver {
        registry,
        components: &components,
        var_to_comp: &var_to_comp,
    };
    let mut predicates = Vec::new();
    let mut neg_predicates: HashMap<usize, Vec<Predicate>> = HashMap::new();
    for conjunct in conjuncts {
        let expr = resolver.resolve(conjunct)?;
        let pred = Predicate::new(expr);
        let negated_refs: Vec<usize> = pred
            .mask()
            .iter_ones()
            .filter(|&c| components[c].negated)
            .collect();
        match negated_refs.len() {
            0 => predicates.push(pred),
            1 => neg_predicates
                .entry(negated_refs[0])
                .or_default()
                .push(pred),
            _ => {
                return Err(match first_attr_offset(conjunct) {
                    Some(off) => AnalyzeErrorKind::PredicateSpansNegations.at(off),
                    None => AnalyzeErrorKind::PredicateSpansNegations.into(),
                })
            }
        }
    }

    // negations with flanks
    let mut negations = Vec::new();
    for (ix, c) in components.iter().enumerate() {
        if !c.negated {
            continue;
        }
        let left = positives.iter().rposition(|&p| p < ix);
        let right = positives.iter().position(|&p| p > ix);
        negations.push(Negation {
            comp: ix,
            types: c.types.clone(),
            left,
            right,
            predicates: neg_predicates.remove(&ix).unwrap_or_default(),
        });
    }

    // projections
    let mut projections = Vec::new();
    for p in &ast.returns {
        let &comp = var_to_comp
            .get(&p.var)
            .ok_or_else(|| AnalyzeErrorKind::UnknownVariable(p.var.clone()).at(p.offset))?;
        if components[comp].negated {
            return Err(AnalyzeErrorKind::ProjectsNegated(p.var.clone()).at(p.offset));
        }
        projections.push(resolve_projection(
            registry,
            &components,
            comp,
            &p.var,
            &p.field,
            p.offset,
        )?);
    }

    let partition = detect_partition(registry, &components, &positives, &negations, &predicates);

    Ok(Query::from_parts(
        components,
        positives,
        Duration::new(ast.within),
        predicates,
        negations,
        projections,
        partition,
    ))
}

fn resolve_projection(
    registry: &TypeRegistry,
    components: &[Component],
    comp: usize,
    var: &str,
    field: &str,
    offset: usize,
) -> Result<Projection, AnalyzeError> {
    match field {
        "ts" => Ok(Projection::Ts(comp)),
        "id" => Ok(Projection::Id(comp)),
        _ => {
            let fid = resolve_common_field(registry, &components[comp], var, field, offset)?;
            Ok(Projection::Attr { comp, field: fid })
        }
    }
}

/// Resolves `var.field` for a (possibly alternation) component: the field
/// must exist at the same position with the same kind in every alternate
/// type, so one `FieldId` is valid for whichever type matches at runtime.
fn resolve_common_field(
    registry: &TypeRegistry,
    component: &Component,
    var: &str,
    field: &str,
    offset: usize,
) -> Result<FieldId, AnalyzeError> {
    let mut resolved: Option<(FieldId, sequin_types::ValueKind)> = None;
    for &ty in &component.types {
        let schema = registry.schema(ty);
        let (fid, kind) = schema.field(field).ok_or_else(|| {
            AnalyzeErrorKind::UnknownField {
                var: var.to_owned(),
                field: field.to_owned(),
            }
            .at(offset)
        })?;
        match resolved {
            None => resolved = Some((fid, kind)),
            Some(prev) if prev == (fid, kind) => {}
            Some(_) => {
                return Err(AnalyzeErrorKind::AmbiguousField {
                    var: var.to_owned(),
                    field: field.to_owned(),
                }
                .at(offset))
            }
        }
    }
    Ok(resolved.expect("components have at least one type").0)
}

/// The byte offset of the leftmost attribute reference in `e`, for locating
/// whole-conjunct diagnostics.
fn first_attr_offset(e: &ExprAst) -> Option<usize> {
    match e {
        ExprAst::Attr { offset, .. } => Some(*offset),
        ExprAst::Unary { expr, .. } => first_attr_offset(expr),
        ExprAst::Binary { lhs, rhs, .. } => {
            first_attr_offset(lhs).or_else(|| first_attr_offset(rhs))
        }
        _ => None,
    }
}

fn split_conjuncts<'a>(e: &'a ExprAst, out: &mut Vec<&'a ExprAst>) {
    match e {
        ExprAst::Binary {
            op: BinaryOpAst::And,
            lhs,
            rhs,
        } => {
            split_conjuncts(lhs, out);
            split_conjuncts(rhs, out);
        }
        other => out.push(other),
    }
}

struct Resolver<'a> {
    registry: &'a TypeRegistry,
    components: &'a [Component],
    var_to_comp: &'a HashMap<String, usize>,
}

impl Resolver<'_> {
    fn resolve(&self, e: &ExprAst) -> Result<Expr, AnalyzeError> {
        Ok(match e {
            ExprAst::Int(n) => Expr::Const(Value::Int(*n)),
            ExprAst::Float(x) => Expr::Const(Value::Float(*x)),
            ExprAst::Str(s) => Expr::Const(Value::str(s.as_str())),
            ExprAst::Bool(b) => Expr::Const(Value::Bool(*b)),
            ExprAst::Attr { var, field, offset } => {
                let &comp = self
                    .var_to_comp
                    .get(var)
                    .ok_or_else(|| AnalyzeErrorKind::UnknownVariable(var.clone()).at(*offset))?;
                match field.as_str() {
                    "ts" => Expr::Ts(comp),
                    "id" => Expr::Id(comp),
                    _ => {
                        let fid = resolve_common_field(
                            self.registry,
                            &self.components[comp],
                            var,
                            field,
                            *offset,
                        )?;
                        Expr::Attr { comp, field: fid }
                    }
                }
            }
            ExprAst::Unary { op, expr } => Expr::Unary {
                op: match op {
                    UnaryOpAst::Not => UnaryOp::Not,
                    UnaryOpAst::Neg => UnaryOp::Neg,
                },
                expr: Box::new(self.resolve(expr)?),
            },
            ExprAst::Binary { op, lhs, rhs } => Expr::Binary {
                op: match op {
                    BinaryOpAst::Add => BinaryOp::Add,
                    BinaryOpAst::Sub => BinaryOp::Sub,
                    BinaryOpAst::Mul => BinaryOp::Mul,
                    BinaryOpAst::Div => BinaryOp::Div,
                    BinaryOpAst::Eq => BinaryOp::Eq,
                    BinaryOpAst::Ne => BinaryOp::Ne,
                    BinaryOpAst::Lt => BinaryOp::Lt,
                    BinaryOpAst::Le => BinaryOp::Le,
                    BinaryOpAst::Gt => BinaryOp::Gt,
                    BinaryOpAst::Ge => BinaryOp::Ge,
                    BinaryOpAst::And => BinaryOp::And,
                    BinaryOpAst::Or => BinaryOp::Or,
                },
                lhs: Box::new(self.resolve(lhs)?),
                rhs: Box::new(self.resolve(rhs)?),
            },
        })
    }
}

/// Finds an equality-join chain covering every positive component, if any:
/// a set of `a.f == b.g` conjuncts whose union-find closure places at least
/// one field of each positive component in one equivalence class.
pub(crate) fn detect_partition(
    registry: &TypeRegistry,
    components: &[Component],
    positives: &[usize],
    negations: &[Negation],
    predicates: &[Predicate],
) -> Option<PartitionScheme> {
    // floats make no hash key; a chain through a float field is unusable
    let keyable = |comp: usize, field: FieldId| {
        components[comp].types.iter().all(|&ty| {
            registry.schema(ty).field_kind(field) != Some(sequin_types::ValueKind::Float)
        })
    };
    // collect equality edges between plain attribute refs
    let mut nodes: Vec<(usize, FieldId)> = Vec::new();
    let mut parent: Vec<usize> = Vec::new();
    let mut index: HashMap<(usize, FieldId), usize> = HashMap::new();
    let intern = |nodes: &mut Vec<(usize, FieldId)>,
                  parent: &mut Vec<usize>,
                  index: &mut HashMap<(usize, FieldId), usize>,
                  key: (usize, FieldId)| {
        *index.entry(key).or_insert_with(|| {
            nodes.push(key);
            parent.push(nodes.len() - 1);
            nodes.len() - 1
        })
    };
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }

    // include negation predicates: they can extend the chain to negated comps
    let all_preds = predicates
        .iter()
        .chain(negations.iter().flat_map(|n| n.predicates.iter()));
    for pred in all_preds {
        if let Expr::Binary {
            op: BinaryOp::Eq,
            lhs,
            rhs,
        } = pred.expr()
        {
            if let (
                Expr::Attr {
                    comp: ca,
                    field: fa,
                },
                Expr::Attr {
                    comp: cb,
                    field: fb,
                },
            ) = (lhs.as_ref(), rhs.as_ref())
            {
                let a = intern(&mut nodes, &mut parent, &mut index, (*ca, *fa));
                let b = intern(&mut nodes, &mut parent, &mut index, (*cb, *fb));
                let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                if ra != rb {
                    parent[ra] = rb;
                }
            }
        }
    }
    if nodes.is_empty() {
        return None;
    }

    // group nodes by root; look for a class covering all positives
    let mut classes: HashMap<usize, Vec<(usize, FieldId)>> = HashMap::new();
    for (i, &node) in nodes.iter().enumerate() {
        let root = find(&mut parent, i);
        classes.entry(root).or_default().push(node);
    }
    for members in classes.values() {
        if members.iter().any(|&(c, f)| !keyable(c, f)) {
            continue;
        }
        let mut fields: Vec<Option<FieldId>> = vec![None; positives.len()];
        for &(comp, field) in members {
            if let Some(p) = positives.iter().position(|&c| c == comp) {
                if fields[p].is_none() {
                    fields[p] = Some(field);
                }
            }
        }
        if fields.iter().all(Option::is_some) {
            let _ = &components;
            let negation_fields = negations
                .iter()
                .map(|n| members.iter().find(|(c, _)| *c == n.comp).map(|&(_, f)| f))
                .collect();
            return Some(PartitionScheme {
                fields: fields.into_iter().map(Option::unwrap).collect(),
                negation_fields,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_text;
    use sequin_types::ValueKind;

    fn registry() -> TypeRegistry {
        let mut reg = TypeRegistry::new();
        for name in ["A", "B", "C", "D"] {
            reg.declare(name, &[("x", ValueKind::Int), ("tag", ValueKind::Str)])
                .unwrap();
        }
        reg
    }

    fn q(text: &str) -> Result<Arc<Query>, AnalyzeError> {
        analyze(&parse_text(text).unwrap(), &registry())
    }

    #[test]
    fn resolves_simple_query() {
        let query = q("PATTERN SEQ(A a, B b) WHERE a.x < b.x WITHIN 10 RETURN a.x, b.ts").unwrap();
        assert_eq!(query.positive_len(), 2);
        assert_eq!(query.predicates().len(), 1);
        assert_eq!(query.projections().len(), 2);
        assert_eq!(query.window(), Duration::new(10));
        assert!(!query.has_negation());
    }

    #[test]
    fn unknown_type_rejected_with_offset() {
        let text = "PATTERN SEQ(Z z) WITHIN 10";
        let err = q(text).unwrap_err();
        assert_eq!(err.kind(), &AnalyzeErrorKind::UnknownType("Z".into()));
        assert_eq!(err.offset(), Some(text.find('Z').unwrap()));
        assert!(err.to_string().contains("at byte"), "{err}");
    }

    #[test]
    fn unknown_variable_rejected_with_offset() {
        let text = "PATTERN SEQ(A a) WHERE b.x > 1 WITHIN 10";
        let err = q(text).unwrap_err();
        assert!(matches!(err.kind(), AnalyzeErrorKind::UnknownVariable(_)));
        assert_eq!(err.offset(), Some(text.find("b.x").unwrap()));
    }

    #[test]
    fn unknown_field_rejected_with_offset() {
        let text = "PATTERN SEQ(A a) WHERE a.nope > 1 WITHIN 10";
        let err = q(text).unwrap_err();
        assert!(matches!(err.kind(), AnalyzeErrorKind::UnknownField { .. }));
        assert_eq!(err.offset(), Some(text.find("a.nope").unwrap()));
    }

    #[test]
    fn duplicate_variable_rejected() {
        let err = q("PATTERN SEQ(A a, B a) WITHIN 10").unwrap_err();
        assert!(matches!(err.kind(), AnalyzeErrorKind::DuplicateVariable(_)));
        assert!(err.offset().is_some());
    }

    #[test]
    fn all_negated_rejected() {
        assert_eq!(
            q("PATTERN SEQ(!A a) WITHIN 10").unwrap_err().kind(),
            &AnalyzeErrorKind::NoPositiveComponent
        );
    }

    #[test]
    fn adjacent_negations_rejected() {
        let err = q("PATTERN SEQ(A a, !B b, !C c, D d) WITHIN 10").unwrap_err();
        assert_eq!(err.kind(), &AnalyzeErrorKind::AdjacentNegations);
        assert!(err.offset().is_some());
    }

    #[test]
    fn zero_window_rejected() {
        let err = q("PATTERN SEQ(A a) WITHIN 0").unwrap_err();
        assert_eq!(err.kind(), &AnalyzeErrorKind::ZeroWindow);
        assert_eq!(err.offset(), None, "whole-query condition has no span");
    }

    #[test]
    fn projection_of_negated_rejected() {
        let err = q("PATTERN SEQ(A a, !B b, C c) WITHIN 10 RETURN b.x").unwrap_err();
        assert!(matches!(err.kind(), AnalyzeErrorKind::ProjectsNegated(_)));
        assert!(err.offset().is_some());
    }

    #[test]
    fn negation_flanks_resolved() {
        let query = q("PATTERN SEQ(!A a, B b, !C c, D d, !A e) WITHIN 10").unwrap();
        let negs = query.negations();
        assert_eq!(negs.len(), 3);
        // leading negation
        assert_eq!(negs[0].left, None);
        assert_eq!(negs[0].right, Some(0));
        // middle negation between positives 0 and 1
        assert_eq!(negs[1].left, Some(0));
        assert_eq!(negs[1].right, Some(1));
        // trailing negation
        assert_eq!(negs[2].left, Some(1));
        assert_eq!(negs[2].right, None);
    }

    #[test]
    fn predicates_split_and_routed_to_negations() {
        let query =
            q("PATTERN SEQ(A a, !B b, C c) WHERE a.x > 1 AND b.x == a.x AND c.x < 5 WITHIN 10")
                .unwrap();
        assert_eq!(query.predicates().len(), 2);
        assert_eq!(query.negations()[0].predicates.len(), 1);
    }

    #[test]
    fn conjunct_spanning_two_negations_rejected_with_offset() {
        let text = "PATTERN SEQ(A a, !B b, C c, !D d, A e) WHERE b.x == d.x WITHIN 10";
        let err = q(text).unwrap_err();
        assert_eq!(err.kind(), &AnalyzeErrorKind::PredicateSpansNegations);
        assert_eq!(err.offset(), Some(text.find("b.x").unwrap()));
    }

    #[test]
    fn partition_detected_for_full_equi_chain() {
        let query =
            q("PATTERN SEQ(A a, B b, C c) WHERE a.tag == b.tag AND b.tag == c.tag WITHIN 10")
                .unwrap();
        let scheme = query.partition().expect("partition scheme");
        assert_eq!(scheme.fields.len(), 3);
    }

    #[test]
    fn partition_rejected_on_float_fields() {
        let mut reg = TypeRegistry::new();
        for name in ["A", "B"] {
            reg.declare(name, &[("f", ValueKind::Float)]).unwrap();
        }
        let query = analyze(
            &parse_text("PATTERN SEQ(A a, B b) WHERE a.f == b.f WITHIN 10").unwrap(),
            &reg,
        )
        .unwrap();
        assert!(query.partition().is_none());
    }

    #[test]
    fn partition_absent_for_partial_chain() {
        let query = q("PATTERN SEQ(A a, B b, C c) WHERE a.tag == b.tag WITHIN 10").unwrap();
        assert!(query.partition().is_none());
    }

    #[test]
    fn partition_extends_to_negations() {
        let query =
            q("PATTERN SEQ(A a, !B n, C c) WHERE a.tag == c.tag AND n.tag == a.tag WITHIN 10")
                .unwrap();
        let scheme = query.partition().expect("partition scheme");
        assert_eq!(scheme.negation_fields.len(), 1);
        assert!(scheme.negation_fields[0].is_some());
    }

    #[test]
    fn local_and_join_predicate_classification() {
        let query = q("PATTERN SEQ(A a, B b) WHERE a.x > 1 AND a.x == b.x WITHIN 10").unwrap();
        assert_eq!(query.local_predicates(0).len(), 1);
        assert_eq!(query.local_predicates(1).len(), 0);
        assert_eq!(query.join_predicates().len(), 1);
    }

    #[test]
    fn slots_for_repeated_type() {
        let query = q("PATTERN SEQ(A a1, B b, A a2) WITHIN 10").unwrap();
        let reg = registry();
        let a = reg.lookup("A").unwrap();
        assert_eq!(query.slots_for_type(a), vec![0, 2]);
        assert_eq!(query.relevant_types().len(), 2);
    }

    #[test]
    fn alternation_resolves_and_matches_both_types() {
        let query = q("PATTERN SEQ(A|B ab, C c) WHERE ab.x > 1 WITHIN 10").unwrap();
        let reg = registry();
        let a = reg.lookup("A").unwrap();
        let b = reg.lookup("B").unwrap();
        let c = reg.lookup("C").unwrap();
        assert_eq!(query.slots_for_type(a), vec![0]);
        assert_eq!(query.slots_for_type(b), vec![0]);
        assert_eq!(query.slots_for_type(c), vec![1]);
        assert_eq!(query.relevant_types().len(), 3);
        assert_eq!(query.positive_types(0).len(), 2);
    }

    #[test]
    fn alternation_field_must_be_common() {
        let mut reg = registry();
        // E has `x` at a different position than A/B/C/D (tag first)
        reg.declare("E", &[("tag", ValueKind::Str), ("x", ValueKind::Int)])
            .unwrap();
        let err = analyze(
            &parse_text("PATTERN SEQ(A|E ae) WHERE ae.x > 1 WITHIN 10").unwrap(),
            &reg,
        )
        .unwrap_err();
        assert!(matches!(
            err.kind(),
            AnalyzeErrorKind::AmbiguousField { .. }
        ));
        // but a query not touching the conflicting field is fine
        assert!(analyze(&parse_text("PATTERN SEQ(A|E ae) WITHIN 10").unwrap(), &reg).is_ok());
    }

    #[test]
    fn alternation_duplicate_types_deduped() {
        let query = q("PATTERN SEQ(A|A|A a, B b) WITHIN 10").unwrap();
        assert_eq!(query.positive_types(0).len(), 1);
    }

    #[test]
    fn negated_alternation_routes_predicates() {
        let query = q("PATTERN SEQ(A a, !B|C nc, D d) WHERE nc.x > 2 WITHIN 10").unwrap();
        assert_eq!(query.negations().len(), 1);
        assert_eq!(query.negations()[0].types.len(), 2);
        assert_eq!(query.negations()[0].predicates.len(), 1);
    }

    #[test]
    fn ts_and_id_pseudo_fields_resolve() {
        let query = q("PATTERN SEQ(A a, B b) WHERE b.ts - a.ts < 5 WITHIN 10 RETURN a.id").unwrap();
        assert_eq!(query.predicates().len(), 1);
        assert_eq!(query.projections(), &[Projection::Id(0)]);
    }

    #[test]
    fn display_shows_negation() {
        let query = q("PATTERN SEQ(A a, !B b, C c) WITHIN 10").unwrap();
        let s = query.to_string();
        assert!(s.contains('!'));
        assert!(s.contains("WITHIN"));
    }
}
