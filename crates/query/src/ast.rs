//! Raw (unresolved) abstract syntax produced by the parser.
//!
//! Names are still strings here; [`crate::analyze`] resolves them against a
//! [`sequin_types::TypeRegistry`] to produce an executable [`crate::Query`].

/// A complete parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryAst {
    /// The sequence components, in pattern order.
    pub components: Vec<ComponentAst>,
    /// The `WHERE` clause, if present.
    pub filter: Option<ExprAst>,
    /// The `WITHIN` window in ticks.
    pub within: u64,
    /// The `RETURN` projections, if present.
    pub returns: Vec<ProjectionAst>,
}

/// One `SEQ(...)` component: `TypeName var` with optional leading `!`.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentAst {
    /// Whether the component is negated.
    pub negated: bool,
    /// Event type names (alternation: `A|B var` matches either type).
    pub type_names: Vec<String>,
    /// Variable bound to the matched event.
    pub var: String,
    /// Byte offset of the component in the source (for diagnostics).
    pub offset: usize,
}

/// One `RETURN` item: `var.field`, `var.ts`, or `var.id`.
#[derive(Debug, Clone, PartialEq)]
pub struct ProjectionAst {
    /// Variable name.
    pub var: String,
    /// Field name (`ts`/`id` are builtin pseudo-fields).
    pub field: String,
    /// Byte offset for diagnostics.
    pub offset: usize,
}

/// Unresolved expression tree for `WHERE` clauses.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprAst {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// Attribute reference `var.field` (also `var.ts` / `var.id`).
    Attr {
        /// Variable name.
        var: String,
        /// Field name.
        field: String,
        /// Byte offset for diagnostics.
        offset: usize,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOpAst,
        /// Operand.
        expr: Box<ExprAst>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOpAst,
        /// Left operand.
        lhs: Box<ExprAst>,
        /// Right operand.
        rhs: Box<ExprAst>,
    },
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOpAst {
    /// Logical negation (`NOT` / `!`).
    Not,
    /// Arithmetic negation (`-`).
    Neg,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOpAst {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}
