//! Programmatic query construction (no query text required).
//!
//! ```
//! use sequin_query::{pred, QueryBuilder};
//! use sequin_types::{TypeRegistry, ValueKind};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut reg = TypeRegistry::new();
//! reg.declare("A", &[("x", ValueKind::Int)])?;
//! reg.declare("B", &[("x", ValueKind::Int)])?;
//! let q = QueryBuilder::new()
//!     .component("A", "a")
//!     .negated("B", "b")
//!     .component("B", "c")
//!     .filter(pred::attr("a", "x").lt(pred::attr("c", "x")))
//!     .within(100)
//!     .returns("a", "x")
//!     .build(&reg)?;
//! assert!(q.has_negation());
//! # Ok(())
//! # }
//! ```

use std::sync::Arc;

use sequin_types::TypeRegistry;

use crate::analyze::analyze;
use crate::ast::{BinaryOpAst, ComponentAst, ExprAst, ProjectionAst, QueryAst, UnaryOpAst};
use crate::error::AnalyzeError;
use crate::query::Query;

/// Expression-building helpers for [`QueryBuilder::filter`].
#[allow(clippy::should_implement_trait)]
pub mod pred {
    use super::*;

    /// A `WHERE`-clause expression under construction.
    #[derive(Debug, Clone, PartialEq)]
    pub struct PredExpr(pub(crate) ExprAst);

    /// References `var.field` (also accepts the pseudo-fields `ts`/`id`).
    pub fn attr(var: &str, field: &str) -> PredExpr {
        PredExpr(ExprAst::Attr {
            var: var.to_owned(),
            field: field.to_owned(),
            offset: 0,
        })
    }

    /// Integer literal.
    pub fn int(n: i64) -> PredExpr {
        PredExpr(ExprAst::Int(n))
    }

    /// Float literal.
    pub fn float(x: f64) -> PredExpr {
        PredExpr(ExprAst::Float(x))
    }

    /// String literal.
    pub fn string(s: &str) -> PredExpr {
        PredExpr(ExprAst::Str(s.to_owned()))
    }

    /// Boolean literal.
    pub fn boolean(b: bool) -> PredExpr {
        PredExpr(ExprAst::Bool(b))
    }

    macro_rules! binop {
        ($(#[$doc:meta] $name:ident => $op:ident),* $(,)?) => {
            impl PredExpr {
                $(
                    #[$doc]
                    pub fn $name(self, rhs: PredExpr) -> PredExpr {
                        PredExpr(ExprAst::Binary {
                            op: BinaryOpAst::$op,
                            lhs: Box::new(self.0),
                            rhs: Box::new(rhs.0),
                        })
                    }
                )*
            }
        };
    }

    binop! {
        /// `self == rhs`
        eq => Eq,
        /// `self != rhs`
        ne => Ne,
        /// `self < rhs`
        lt => Lt,
        /// `self <= rhs`
        le => Le,
        /// `self > rhs`
        gt => Gt,
        /// `self >= rhs`
        ge => Ge,
        /// `self + rhs`
        add => Add,
        /// `self - rhs`
        sub => Sub,
        /// `self * rhs`
        mul => Mul,
        /// `self / rhs`
        div => Div,
        /// `self AND rhs`
        and => And,
        /// `self OR rhs`
        or => Or,
    }

    impl PredExpr {
        /// Logical negation.
        pub fn not(self) -> PredExpr {
            PredExpr(ExprAst::Unary {
                op: UnaryOpAst::Not,
                expr: Box::new(self.0),
            })
        }

        /// Arithmetic negation.
        pub fn neg(self) -> PredExpr {
            PredExpr(ExprAst::Unary {
                op: UnaryOpAst::Neg,
                expr: Box::new(self.0),
            })
        }
    }
}

/// Incremental construction of a [`Query`] (see `C-BUILDER`).
///
/// The builder assembles the same AST the text parser produces and runs the
/// shared analyzer, so programmatic and textual queries behave identically.
#[derive(Debug, Clone, Default)]
pub struct QueryBuilder {
    components: Vec<ComponentAst>,
    filters: Vec<ExprAst>,
    within: u64,
    returns: Vec<ProjectionAst>,
}

impl QueryBuilder {
    /// Starts an empty builder.
    pub fn new() -> QueryBuilder {
        QueryBuilder::default()
    }

    /// Appends a positive component `TypeName var`.
    pub fn component(self, type_name: &str, var: &str) -> Self {
        self.component_any(&[type_name], var)
    }

    /// Appends a positive alternation component `T1|T2|... var`.
    pub fn component_any(mut self, type_names: &[&str], var: &str) -> Self {
        self.components.push(ComponentAst {
            negated: false,
            type_names: type_names.iter().map(|s| (*s).to_owned()).collect(),
            var: var.to_owned(),
            offset: 0,
        });
        self
    }

    /// Appends a negated component `!TypeName var`.
    pub fn negated(self, type_name: &str, var: &str) -> Self {
        self.negated_any(&[type_name], var)
    }

    /// Appends a negated alternation component `!T1|T2|... var`.
    pub fn negated_any(mut self, type_names: &[&str], var: &str) -> Self {
        self.components.push(ComponentAst {
            negated: true,
            type_names: type_names.iter().map(|s| (*s).to_owned()).collect(),
            var: var.to_owned(),
            offset: 0,
        });
        self
    }

    /// Adds a `WHERE` conjunct (multiple calls are ANDed together).
    pub fn filter(mut self, p: pred::PredExpr) -> Self {
        self.filters.push(p.0);
        self
    }

    /// Sets the window (`WITHIN`) in ticks.
    pub fn within(mut self, ticks: u64) -> Self {
        self.within = ticks;
        self
    }

    /// Adds a `RETURN var.field` projection (`ts`/`id` allowed).
    pub fn returns(mut self, var: &str, field: &str) -> Self {
        self.returns.push(ProjectionAst {
            var: var.to_owned(),
            field: field.to_owned(),
            offset: 0,
        });
        self
    }

    /// Analyzes the accumulated clauses into an executable [`Query`].
    ///
    /// # Errors
    ///
    /// Any [`AnalyzeError`] the text front-end could produce.
    pub fn build(self, registry: &TypeRegistry) -> Result<Arc<Query>, AnalyzeError> {
        let filter = self.filters.into_iter().reduce(|acc, e| ExprAst::Binary {
            op: BinaryOpAst::And,
            lhs: Box::new(acc),
            rhs: Box::new(e),
        });
        let ast = QueryAst {
            components: self.components,
            filter,
            within: self.within,
            returns: self.returns,
        };
        analyze(&ast, registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use sequin_types::ValueKind;

    fn registry() -> TypeRegistry {
        let mut reg = TypeRegistry::new();
        for name in ["A", "B", "C"] {
            reg.declare(name, &[("x", ValueKind::Int), ("tag", ValueKind::Str)])
                .unwrap();
        }
        reg
    }

    #[test]
    fn builder_matches_parser_output() {
        let reg = registry();
        let built = QueryBuilder::new()
            .component("A", "a")
            .negated("B", "b")
            .component("C", "c")
            .filter(pred::attr("a", "x").gt(pred::int(1)))
            .filter(pred::attr("a", "tag").eq(pred::attr("c", "tag")))
            .within(50)
            .returns("a", "x")
            .build(&reg)
            .unwrap();
        let parsed = parse(
            "PATTERN SEQ(A a, !B b, C c) WHERE a.x > 1 AND a.tag == c.tag WITHIN 50 RETURN a.x",
            &reg,
        )
        .unwrap();
        assert_eq!(*built, *parsed);
    }

    #[test]
    fn builder_propagates_analysis_errors() {
        let reg = registry();
        let err = QueryBuilder::new()
            .component("Nope", "n")
            .within(5)
            .build(&reg)
            .unwrap_err();
        assert!(matches!(
            err.kind(),
            crate::AnalyzeErrorKind::UnknownType(_)
        ));
        let err = QueryBuilder::new()
            .component("A", "a")
            .build(&reg)
            .unwrap_err();
        assert_eq!(err.kind(), &crate::AnalyzeErrorKind::ZeroWindow);
    }

    #[test]
    fn pred_helpers_build_expected_shapes() {
        let e = pred::int(1)
            .add(pred::float(2.0))
            .le(pred::attr("a", "x"))
            .or(pred::boolean(false).not());
        // must analyze fine in a one-component query
        let reg = registry();
        let q = QueryBuilder::new()
            .component("A", "a")
            .filter(e)
            .within(5)
            .build(&reg)
            .unwrap();
        assert_eq!(q.predicates().len(), 1);
    }

    #[test]
    fn string_and_neg_helpers() {
        let reg = registry();
        let q = QueryBuilder::new()
            .component("A", "a")
            .filter(pred::attr("a", "tag").ne(pred::string("x")))
            .filter(pred::attr("a", "x").gt(pred::int(3).neg()))
            .within(5)
            .build(&reg)
            .unwrap();
        assert_eq!(q.predicates().len(), 2);
    }
}
