//! # sequin-query
//!
//! The sequence pattern query language of `sequin`, modeled on the SASE
//! event language used by Li et al. (ICDCS Workshops 2007). A query names a
//! sequence of event types (optionally negated), correlation/filter
//! predicates, a time window, and a projection:
//!
//! ```text
//! PATTERN SEQ(SHIPPED s, !CHECKED c, COUNTERFEIT x)
//! WHERE   s.tag == x.tag AND x.weight > 10
//! WITHIN  100
//! RETURN  s.tag, x.weight
//! ```
//!
//! Semantics (over *occurrence timestamps*, independent of arrival order):
//!
//! * the positive components must match distinct events with **strictly
//!   increasing timestamps**;
//! * the match **span** (last positive ts − first positive ts) is at most
//!   the window;
//! * all predicates over positive components hold;
//! * for each negated component there is **no** event of its type
//!   satisfying its predicates inside its *negation region*: strictly
//!   between the flanking positives, or — for a leading (resp. trailing)
//!   negation — in `(first.ts − W, first.ts)` (resp. `(last.ts,
//!   first.ts + W)`).
//!
//! The crate provides a text front-end ([`parse`] → [`Query`]) and a
//! programmatic [`QueryBuilder`]; both produce the same analyzed
//! representation consumed by `sequin-runtime`.
//!
//! ```
//! use sequin_query::parse;
//! use sequin_types::{TypeRegistry, ValueKind};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut reg = TypeRegistry::new();
//! reg.declare("A", &[("x", ValueKind::Int)])?;
//! reg.declare("B", &[("x", ValueKind::Int)])?;
//! let q = parse("PATTERN SEQ(A a, B b) WHERE a.x == b.x WITHIN 50", &reg)?;
//! assert_eq!(q.positive_len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyze;
pub mod ast;
mod builder;
mod error;
mod expr;
mod lexer;
mod parser;
mod query;

pub use analyze::analyze;
pub use builder::{pred, QueryBuilder};
pub use error::{AnalyzeError, AnalyzeErrorKind, ParseError, QueryError};
pub use expr::{BinaryOp, Binding, Expr, UnaryOp};
pub use query::{Component, PartitionScheme, Predicate, Projection, Query};

use sequin_types::TypeRegistry;

/// Parses and analyzes a query text against `registry`.
///
/// # Errors
///
/// Returns [`QueryError::Parse`] on malformed syntax and
/// [`QueryError::Analyze`] when names or types do not resolve.
pub fn parse(text: &str, registry: &TypeRegistry) -> Result<std::sync::Arc<Query>, QueryError> {
    let ast = parser::parse_text(text)?;
    Ok(analyze(&ast, registry)?)
}
