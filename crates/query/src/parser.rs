//! Recursive-descent parser for the query language.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! query   := PATTERN SEQ '(' comp (',' comp)* ')'
//!            (WHERE expr)? WITHIN INT (RETURN proj (',' proj)*)?
//! comp    := '!'? IDENT ('|' IDENT)* IDENT
//! proj    := IDENT '.' IDENT
//! expr    := or
//! or      := and (OR and)*
//! and     := not (AND not)*
//! not     := (NOT | '!') not | cmp
//! cmp     := add (('=='|'!='|'<'|'<='|'>'|'>=') add)?
//! add     := mul (('+'|'-') mul)*
//! mul     := unary (('*'|'/') unary)*
//! unary   := '-' unary | primary
//! primary := INT | FLOAT | STR | true | false
//!          | IDENT '.' IDENT | '(' expr ')'
//! ```

use crate::ast::{BinaryOpAst, ComponentAst, ExprAst, ProjectionAst, QueryAst, UnaryOpAst};
use crate::error::ParseError;
use crate::lexer::{tokenize, Token, TokenKind};

/// Parses query text into the raw AST.
pub(crate) fn parse_text(src: &str) -> Result<QueryAst, ParseError> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, ParseError> {
        if self.peek().kind == kind {
            Ok(self.advance())
        } else {
            Err(self.unexpected(&format!("expected {}", kind.describe())))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<(String, usize), ParseError> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                let off = self.peek().offset;
                self.advance();
                Ok((s, off))
            }
            _ => Err(self.unexpected(&format!("expected {what}"))),
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if self.peek().kind == TokenKind::Eof {
            Ok(())
        } else {
            Err(self.unexpected("expected end of query"))
        }
    }

    fn unexpected(&self, msg: &str) -> ParseError {
        let t = self.peek();
        ParseError::new(t.offset, format!("{msg}, found {}", t.kind.describe()))
    }

    fn query(&mut self) -> Result<QueryAst, ParseError> {
        self.expect(TokenKind::Pattern)?;
        self.expect(TokenKind::Seq)?;
        self.expect(TokenKind::LParen)?;
        let mut components = vec![self.component()?];
        while self.eat(&TokenKind::Comma) {
            components.push(self.component()?);
        }
        self.expect(TokenKind::RParen)?;
        let filter = if self.eat(&TokenKind::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect(TokenKind::Within)?;
        let within = match self.peek().kind {
            TokenKind::Int(n) if n >= 0 => {
                self.advance();
                n as u64
            }
            _ => return Err(self.unexpected("expected a non-negative window length")),
        };
        let mut returns = Vec::new();
        if self.eat(&TokenKind::Return) {
            returns.push(self.projection()?);
            while self.eat(&TokenKind::Comma) {
                returns.push(self.projection()?);
            }
        }
        Ok(QueryAst {
            components,
            filter,
            within,
            returns,
        })
    }

    fn component(&mut self) -> Result<ComponentAst, ParseError> {
        let offset = self.peek().offset;
        let negated = self.eat(&TokenKind::Bang) || self.eat(&TokenKind::Not);
        let (first, _) = self.expect_ident("an event type name")?;
        let mut type_names = vec![first];
        while self.eat(&TokenKind::Pipe) {
            let (next, _) = self.expect_ident("an event type name")?;
            type_names.push(next);
        }
        let (var, _) = self.expect_ident("a variable name")?;
        Ok(ComponentAst {
            negated,
            type_names,
            var,
            offset,
        })
    }

    fn projection(&mut self) -> Result<ProjectionAst, ParseError> {
        let (var, offset) = self.expect_ident("a variable name")?;
        self.expect(TokenKind::Dot)?;
        let (field, _) = self.expect_ident("a field name")?;
        Ok(ProjectionAst { var, field, offset })
    }

    fn expr(&mut self) -> Result<ExprAst, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<ExprAst, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&TokenKind::Or) {
            let rhs = self.and_expr()?;
            lhs = ExprAst::Binary {
                op: BinaryOpAst::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<ExprAst, ParseError> {
        let mut lhs = self.not_expr()?;
        while self.eat(&TokenKind::And) {
            let rhs = self.not_expr()?;
            lhs = ExprAst::Binary {
                op: BinaryOpAst::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<ExprAst, ParseError> {
        if self.eat(&TokenKind::Not) || self.eat(&TokenKind::Bang) {
            let inner = self.not_expr()?;
            Ok(ExprAst::Unary {
                op: UnaryOpAst::Not,
                expr: Box::new(inner),
            })
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<ExprAst, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek().kind {
            TokenKind::EqEq => BinaryOpAst::Eq,
            TokenKind::Ne => BinaryOpAst::Ne,
            TokenKind::Lt => BinaryOpAst::Lt,
            TokenKind::Le => BinaryOpAst::Le,
            TokenKind::Gt => BinaryOpAst::Gt,
            TokenKind::Ge => BinaryOpAst::Ge,
            _ => return Ok(lhs),
        };
        self.advance();
        let rhs = self.add_expr()?;
        Ok(ExprAst::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    fn add_expr(&mut self) -> Result<ExprAst, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinaryOpAst::Add,
                TokenKind::Minus => BinaryOpAst::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.mul_expr()?;
            lhs = ExprAst::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<ExprAst, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinaryOpAst::Mul,
                TokenKind::Slash => BinaryOpAst::Div,
                _ => break,
            };
            self.advance();
            let rhs = self.unary_expr()?;
            lhs = ExprAst::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<ExprAst, ParseError> {
        if self.eat(&TokenKind::Minus) {
            let inner = self.unary_expr()?;
            Ok(ExprAst::Unary {
                op: UnaryOpAst::Neg,
                expr: Box::new(inner),
            })
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> Result<ExprAst, ParseError> {
        let t = self.peek().clone();
        match t.kind {
            TokenKind::Int(n) => {
                self.advance();
                Ok(ExprAst::Int(n))
            }
            TokenKind::Float(x) => {
                self.advance();
                Ok(ExprAst::Float(x))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(ExprAst::Str(s))
            }
            TokenKind::True => {
                self.advance();
                Ok(ExprAst::Bool(true))
            }
            TokenKind::False => {
                self.advance();
                Ok(ExprAst::Bool(false))
            }
            TokenKind::LParen => {
                self.advance();
                let inner = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::Ident(var) => {
                self.advance();
                self.expect(TokenKind::Dot)?;
                let (field, _) = self.expect_ident("a field name")?;
                Ok(ExprAst::Attr {
                    var,
                    field,
                    offset: t.offset,
                })
            }
            _ => Err(self.unexpected("expected an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_query_parses() {
        let q = parse_text("PATTERN SEQ(A a, B b) WITHIN 10").unwrap();
        assert_eq!(q.components.len(), 2);
        assert_eq!(q.within, 10);
        assert!(q.filter.is_none());
        assert!(q.returns.is_empty());
    }

    #[test]
    fn alternation_components() {
        let q = parse_text("PATTERN SEQ(A|B ab, !C|D cd, E e) WITHIN 10").unwrap();
        assert_eq!(
            q.components[0].type_names,
            vec!["A".to_owned(), "B".to_owned()]
        );
        assert!(q.components[1].negated);
        assert_eq!(q.components[1].type_names.len(), 2);
        assert_eq!(q.components[2].type_names, vec!["E".to_owned()]);
    }

    #[test]
    fn alternation_requires_type_after_pipe() {
        assert!(parse_text("PATTERN SEQ(A| ab) WITHIN 10").is_err());
    }

    #[test]
    fn negated_component_with_bang_and_not() {
        let q = parse_text("PATTERN SEQ(A a, !B b, NOT C c, D d) WITHIN 10").unwrap();
        assert!(!q.components[0].negated);
        assert!(q.components[1].negated);
        assert!(q.components[2].negated);
        assert!(!q.components[3].negated);
    }

    #[test]
    fn where_clause_precedence() {
        let q = parse_text(
            "PATTERN SEQ(A a, B b) WHERE a.x + b.y * 2 > 3 AND a.x == b.y OR NOT a.z WITHIN 5",
        )
        .unwrap();
        // top level must be OR
        match q.filter.unwrap() {
            ExprAst::Binary {
                op: BinaryOpAst::Or,
                lhs,
                rhs,
            } => {
                assert!(matches!(
                    *lhs,
                    ExprAst::Binary {
                        op: BinaryOpAst::And,
                        ..
                    }
                ));
                assert!(matches!(
                    *rhs,
                    ExprAst::Unary {
                        op: UnaryOpAst::Not,
                        ..
                    }
                ));
            }
            other => panic!("unexpected tree: {other:?}"),
        }
    }

    #[test]
    fn mul_binds_tighter_than_add() {
        let q = parse_text("PATTERN SEQ(A a) WHERE a.x + a.y * a.z == 0 WITHIN 5").unwrap();
        match q.filter.unwrap() {
            ExprAst::Binary {
                op: BinaryOpAst::Eq,
                lhs,
                ..
            } => match *lhs {
                ExprAst::Binary {
                    op: BinaryOpAst::Add,
                    rhs,
                    ..
                } => {
                    assert!(matches!(
                        *rhs,
                        ExprAst::Binary {
                            op: BinaryOpAst::Mul,
                            ..
                        }
                    ));
                }
                other => panic!("unexpected: {other:?}"),
            },
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn return_clause() {
        let q = parse_text("PATTERN SEQ(A a, B b) WITHIN 5 RETURN a.x, b.y").unwrap();
        assert_eq!(q.returns.len(), 2);
        assert_eq!(q.returns[0].var, "a");
        assert_eq!(q.returns[1].field, "y");
    }

    #[test]
    fn parenthesized_expressions() {
        let q = parse_text("PATTERN SEQ(A a) WHERE (a.x + 1) * 2 == 4 WITHIN 5").unwrap();
        match q.filter.unwrap() {
            ExprAst::Binary {
                op: BinaryOpAst::Eq,
                lhs,
                ..
            } => {
                assert!(matches!(
                    *lhs,
                    ExprAst::Binary {
                        op: BinaryOpAst::Mul,
                        ..
                    }
                ));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn unary_minus() {
        let q = parse_text("PATTERN SEQ(A a) WHERE a.x > -5 WITHIN 5").unwrap();
        match q.filter.unwrap() {
            ExprAst::Binary {
                op: BinaryOpAst::Gt,
                rhs,
                ..
            } => {
                assert!(matches!(
                    *rhs,
                    ExprAst::Unary {
                        op: UnaryOpAst::Neg,
                        ..
                    }
                ));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn string_and_bool_literals() {
        let q = parse_text("PATTERN SEQ(A a) WHERE a.s == 'hi' AND a.b == true WITHIN 5").unwrap();
        assert!(q.filter.is_some());
    }

    #[test]
    fn missing_within_is_error() {
        let err = parse_text("PATTERN SEQ(A a)").unwrap_err();
        assert!(err.to_string().contains("WITHIN"));
    }

    #[test]
    fn negative_window_is_error() {
        assert!(parse_text("PATTERN SEQ(A a) WITHIN -1").is_err());
    }

    #[test]
    fn trailing_garbage_is_error() {
        assert!(parse_text("PATTERN SEQ(A a) WITHIN 5 garbage").is_err());
    }

    #[test]
    fn missing_var_name_is_error() {
        let err = parse_text("PATTERN SEQ(A) WITHIN 5").unwrap_err();
        assert!(err.to_string().contains("variable"));
    }

    #[test]
    fn empty_seq_is_error() {
        assert!(parse_text("PATTERN SEQ() WITHIN 5").is_err());
    }

    #[test]
    fn bare_ident_in_where_is_error() {
        // variables must be dotted: `a` alone is not an expression
        assert!(parse_text("PATTERN SEQ(A a) WHERE a WITHIN 5").is_err());
    }

    #[test]
    fn error_offset_points_at_problem() {
        let src = "PATTERN SEQ(A a) WITHIN x";
        let err = parse_text(src).unwrap_err();
        assert_eq!(err.offset(), src.find('x').unwrap());
    }
}
