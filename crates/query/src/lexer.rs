//! Hand-rolled lexer for the query language.

use crate::error::ParseError;

/// A lexical token with its byte offset in the source.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Token {
    pub kind: TokenKind,
    pub offset: usize,
}

/// Token kinds. Keywords are case-insensitive in the source but normalized
/// here; identifiers keep their case.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum TokenKind {
    // keywords
    Pattern,
    Seq,
    Where,
    Within,
    Return,
    And,
    Or,
    Not,
    True,
    False,
    // literals / names
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    // punctuation
    LParen,
    RParen,
    Comma,
    Dot,
    Bang,
    Plus,
    Minus,
    Star,
    Slash,
    Pipe,
    EqEq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Eof,
}

impl TokenKind {
    /// Human-readable description used in error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Int(i) => format!("integer `{i}`"),
            TokenKind::Float(x) => format!("float `{x}`"),
            TokenKind::Str(s) => format!("string {s:?}"),
            TokenKind::Eof => "end of input".to_owned(),
            other => format!("`{}`", other.lexeme()),
        }
    }

    fn lexeme(&self) -> &'static str {
        match self {
            TokenKind::Pattern => "PATTERN",
            TokenKind::Seq => "SEQ",
            TokenKind::Where => "WHERE",
            TokenKind::Within => "WITHIN",
            TokenKind::Return => "RETURN",
            TokenKind::And => "AND",
            TokenKind::Or => "OR",
            TokenKind::Not => "NOT",
            TokenKind::True => "true",
            TokenKind::False => "false",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::Comma => ",",
            TokenKind::Dot => ".",
            TokenKind::Bang => "!",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Pipe => "|",
            TokenKind::EqEq => "==",
            TokenKind::Ne => "!=",
            TokenKind::Lt => "<",
            TokenKind::Le => "<=",
            TokenKind::Gt => ">",
            TokenKind::Ge => ">=",
            _ => "",
        }
    }
}

/// Tokenizes `src` completely (including a trailing `Eof` token).
pub(crate) fn tokenize(src: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // line comments: `-- ...` and `// ...`
        if (c == '-' && bytes.get(i + 1) == Some(&b'-'))
            || (c == '/' && bytes.get(i + 1) == Some(&b'/'))
        {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        let kind = match c {
            '(' => {
                i += 1;
                TokenKind::LParen
            }
            ')' => {
                i += 1;
                TokenKind::RParen
            }
            ',' => {
                i += 1;
                TokenKind::Comma
            }
            '.' => {
                i += 1;
                TokenKind::Dot
            }
            '+' => {
                i += 1;
                TokenKind::Plus
            }
            '-' => {
                i += 1;
                TokenKind::Minus
            }
            '*' => {
                i += 1;
                TokenKind::Star
            }
            '|' => {
                i += 1;
                TokenKind::Pipe
            }
            '/' => {
                i += 1;
                TokenKind::Slash
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    TokenKind::Ne
                } else {
                    i += 1;
                    TokenKind::Bang
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    TokenKind::EqEq
                } else {
                    return Err(ParseError::new(
                        start,
                        "expected `==` (single `=` is not an operator)",
                    ));
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    TokenKind::Le
                } else {
                    i += 1;
                    TokenKind::Lt
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    TokenKind::Ge
                } else {
                    i += 1;
                    TokenKind::Gt
                }
            }
            '\'' | '"' => {
                let quote = bytes[i];
                i += 1;
                let s0 = i;
                while i < bytes.len() && bytes[i] != quote {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(ParseError::new(start, "unterminated string literal"));
                }
                let s = src[s0..i].to_owned();
                i += 1;
                TokenKind::Str(s)
            }
            c if c.is_ascii_digit() => {
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < bytes.len()
                    && bytes[i] == b'.'
                    && (bytes[i + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &src[start..i];
                if is_float {
                    TokenKind::Float(text.parse().map_err(|_| {
                        ParseError::new(start, format!("invalid float literal `{text}`"))
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| {
                        ParseError::new(start, format!("integer literal `{text}` out of range"))
                    })?)
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &src[start..i];
                match word.to_ascii_uppercase().as_str() {
                    "PATTERN" => TokenKind::Pattern,
                    "SEQ" => TokenKind::Seq,
                    "WHERE" => TokenKind::Where,
                    "WITHIN" => TokenKind::Within,
                    "RETURN" => TokenKind::Return,
                    "AND" => TokenKind::And,
                    "OR" => TokenKind::Or,
                    "NOT" => TokenKind::Not,
                    "TRUE" => TokenKind::True,
                    "FALSE" => TokenKind::False,
                    _ => TokenKind::Ident(word.to_owned()),
                }
            }
            other => {
                return Err(ParseError::new(
                    start,
                    format!("unexpected character `{other}`"),
                ));
            }
        };
        out.push(Token {
            kind,
            offset: start,
        });
    }
    out.push(Token {
        kind: TokenKind::Eof,
        offset: src.len(),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            kinds("pattern SeQ wHeRe")[..3],
            [TokenKind::Pattern, TokenKind::Seq, TokenKind::Where]
        );
    }

    #[test]
    fn identifiers_keep_case() {
        assert_eq!(kinds("Shipped")[0], TokenKind::Ident("Shipped".into()));
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
        assert_eq!(kinds("4.5")[0], TokenKind::Float(4.5));
        // `4.` followed by ident is Int Dot Ident (field access), not a float
        assert_eq!(
            kinds("a.x")[..3],
            [
                TokenKind::Ident("a".into()),
                TokenKind::Dot,
                TokenKind::Ident("x".into())
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("== != <= >= < > + - * / ! ( ) , .")
                .into_iter()
                .take(15)
                .collect::<Vec<_>>(),
            vec![
                TokenKind::EqEq,
                TokenKind::Ne,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Bang,
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::Comma,
                TokenKind::Dot,
            ]
        );
    }

    #[test]
    fn strings_single_and_double_quoted() {
        assert_eq!(kinds("'abc'")[0], TokenKind::Str("abc".into()));
        assert_eq!(kinds("\"abc\"")[0], TokenKind::Str("abc".into()));
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(tokenize("'abc").is_err());
    }

    #[test]
    fn single_equals_is_error() {
        let err = tokenize("a = b").unwrap_err();
        assert!(err.to_string().contains("=="));
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("a -- comment\n b // another\n c");
        assert_eq!(
            ks[..3],
            [
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into())
            ]
        );
    }

    #[test]
    fn unexpected_character_is_error() {
        assert!(tokenize("§").is_err());
    }

    #[test]
    fn eof_token_is_appended() {
        assert_eq!(kinds("").last(), Some(&TokenKind::Eof));
    }

    #[test]
    fn offsets_point_into_source() {
        let toks = tokenize("ab cd").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 3);
    }
}
