//! Compiled (name-resolved) expressions and their evaluation.

use std::fmt;

use sequin_types::{EventRef, FieldId, Value};

/// A partial assignment of events to query components, indexed by the
/// component's position in the full `SEQ(...)` list.
///
/// Construction in the runtime proceeds incrementally, so most evaluations
/// happen against bindings where only a subset of slots are filled; an
/// expression referencing an unbound slot evaluates to `None` (and the
/// enclosing predicate is treated as *not yet decidable*).
pub type Binding<'a> = [Option<&'a EventRef>];

/// Unary operators of the compiled expression language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Logical negation.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// Binary operators of the compiled expression language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Equality (with numeric coercion).
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Logical conjunction (non-short-circuiting over `None`).
    And,
    /// Logical disjunction.
    Or,
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Eq => "==",
            BinaryOp::Ne => "!=",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
        };
        f.write_str(s)
    }
}

/// A name-resolved expression over a [`Binding`].
///
/// `Ts`/`Id` expose an event's occurrence timestamp and identifier as
/// integers (the pseudo-fields `var.ts` / `var.id` in query text).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal constant.
    Const(Value),
    /// Attribute of the event bound to component `comp`.
    Attr {
        /// Full-list component index.
        comp: usize,
        /// Resolved field.
        field: FieldId,
    },
    /// Occurrence timestamp of component `comp`, as `Int`.
    Ts(usize),
    /// Event id of component `comp`, as `Int`.
    Id(usize),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

impl Expr {
    /// Evaluates against a (possibly partial) binding.
    ///
    /// Returns `None` when a referenced component is unbound, a referenced
    /// field is absent, or an operation is undefined for its operand kinds
    /// (e.g. `"a" + 1`, division by integer zero, comparing `Str` with
    /// `Int`). Predicates treat `None` as *failed* at final evaluation time
    /// and as *undecided* during incremental evaluation.
    pub fn eval(&self, binding: &Binding<'_>) -> Option<Value> {
        match self {
            Expr::Const(v) => Some(v.clone()),
            Expr::Attr { comp, field } => {
                let ev = binding.get(*comp).copied().flatten()?;
                ev.field(*field).cloned()
            }
            Expr::Ts(comp) => {
                let ev = binding.get(*comp).copied().flatten()?;
                i64::try_from(ev.ts().ticks()).ok().map(Value::Int)
            }
            Expr::Id(comp) => {
                let ev = binding.get(*comp).copied().flatten()?;
                i64::try_from(ev.id().get()).ok().map(Value::Int)
            }
            Expr::Unary { op, expr } => {
                let v = expr.eval(binding)?;
                match op {
                    UnaryOp::Not => v.as_bool().map(|b| Value::Bool(!b)),
                    UnaryOp::Neg => match v {
                        Value::Int(i) => i.checked_neg().map(Value::Int),
                        Value::Float(x) => Some(Value::Float(-x)),
                        _ => None,
                    },
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let a = lhs.eval(binding)?;
                let b = rhs.eval(binding)?;
                match op {
                    BinaryOp::Add => a.add(&b),
                    BinaryOp::Sub => a.sub(&b),
                    BinaryOp::Mul => a.mul(&b),
                    BinaryOp::Div => a.div(&b),
                    BinaryOp::Eq => Some(Value::Bool(a.loose_eq(&b))),
                    BinaryOp::Ne => {
                        // distinguish "comparable but unequal" from "incomparable"
                        match a.compare(&b) {
                            Some(ord) => Some(Value::Bool(ord != std::cmp::Ordering::Equal)),
                            None => Some(Value::Bool(a.kind() != b.kind() || a != b)),
                        }
                    }
                    BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge => {
                        let ord = a.compare(&b)?;
                        let holds = match op {
                            BinaryOp::Lt => ord == std::cmp::Ordering::Less,
                            BinaryOp::Le => ord != std::cmp::Ordering::Greater,
                            BinaryOp::Gt => ord == std::cmp::Ordering::Greater,
                            BinaryOp::Ge => ord != std::cmp::Ordering::Less,
                            _ => unreachable!(),
                        };
                        Some(Value::Bool(holds))
                    }
                    BinaryOp::And => Some(Value::Bool(a.as_bool()? && b.as_bool()?)),
                    BinaryOp::Or => Some(Value::Bool(a.as_bool()? || b.as_bool()?)),
                }
            }
        }
    }

    /// Evaluates as a boolean predicate: `Some(true)` iff the expression
    /// evaluates to `Bool(true)`; `Some(false)` for `Bool(false)` or any
    /// evaluation failure on a *fully bound* expression; `None` when a
    /// referenced component is still unbound (undecided).
    pub fn eval_predicate(&self, binding: &Binding<'_>) -> Option<bool> {
        if !self
            .components()
            .iter_ones()
            .all(|c| binding.get(c).copied().flatten().is_some())
        {
            return None;
        }
        Some(matches!(self.eval(binding), Some(Value::Bool(true))))
    }

    /// Returns the set of component indices this expression references,
    /// as a bitmask (queries are limited to 64 components).
    pub fn components(&self) -> ComponentMask {
        let mut mask = ComponentMask::default();
        self.collect_components(&mut mask);
        mask
    }

    fn collect_components(&self, mask: &mut ComponentMask) {
        match self {
            Expr::Const(_) => {}
            Expr::Attr { comp, .. } | Expr::Ts(comp) | Expr::Id(comp) => mask.insert(*comp),
            Expr::Unary { expr, .. } => expr.collect_components(mask),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_components(mask);
                rhs.collect_components(mask);
            }
        }
    }
}

/// A set of component indices, packed into a `u64` bitmask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ComponentMask(u64);

impl ComponentMask {
    /// The maximum number of components a query may have.
    pub const CAPACITY: usize = 64;

    /// Inserts a component index.
    ///
    /// # Panics
    ///
    /// Panics if `ix >= 64` (enforced earlier by analysis).
    pub fn insert(&mut self, ix: usize) {
        assert!(ix < Self::CAPACITY, "component index out of range");
        self.0 |= 1 << ix;
    }

    /// Tests membership.
    pub fn contains(&self, ix: usize) -> bool {
        ix < Self::CAPACITY && self.0 & (1 << ix) != 0
    }

    /// Returns whether `self` is a subset of `other`.
    pub fn subset_of(&self, other: ComponentMask) -> bool {
        self.0 & !other.0 == 0
    }

    /// Returns whether the mask is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Iterates set indices in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        (0..Self::CAPACITY).filter(move |ix| self.contains(*ix))
    }

    /// Largest set index, if any.
    pub fn max(&self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(Self::CAPACITY - 1 - self.0.leading_zeros() as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sequin_types::{Event, EventId, EventTypeId, Timestamp, TypeRegistry, ValueKind};
    use std::sync::Arc;

    fn setup() -> (TypeRegistry, EventTypeId) {
        let mut reg = TypeRegistry::new();
        let a = reg
            .declare("A", &[("x", ValueKind::Int), ("s", ValueKind::Str)])
            .unwrap();
        (reg, a)
    }

    fn ev(ty: EventTypeId, ts: u64, x: i64) -> EventRef {
        Arc::new(
            Event::builder(ty, Timestamp::new(ts))
                .id(EventId::new(ts))
                .attr(Value::Int(x))
                .attr(Value::str("tag"))
                .build(),
        )
    }

    fn attr(comp: usize, ix: usize) -> Expr {
        Expr::Attr {
            comp,
            field: FieldId::from_index(ix),
        }
    }

    fn bin(op: BinaryOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(l),
            rhs: Box::new(r),
        }
    }

    #[test]
    fn attr_lookup_and_arith() {
        let (_, a) = setup();
        let e = ev(a, 5, 10);
        let binding = [Some(&e)];
        let expr = bin(BinaryOp::Add, attr(0, 0), Expr::Const(Value::Int(1)));
        assert_eq!(expr.eval(&binding), Some(Value::Int(11)));
    }

    #[test]
    fn unbound_component_yields_none() {
        let expr = attr(0, 0);
        let binding: [Option<&EventRef>; 1] = [None];
        assert_eq!(expr.eval(&binding), None);
        assert_eq!(expr.eval_predicate(&binding), None);
    }

    #[test]
    fn ts_and_id_pseudo_fields() {
        let (_, a) = setup();
        let e = ev(a, 42, 0);
        let binding = [Some(&e)];
        assert_eq!(Expr::Ts(0).eval(&binding), Some(Value::Int(42)));
        assert_eq!(Expr::Id(0).eval(&binding), Some(Value::Int(42)));
    }

    #[test]
    fn comparisons() {
        let (_, a) = setup();
        let e1 = ev(a, 1, 5);
        let e2 = ev(a, 2, 9);
        let binding = [Some(&e1), Some(&e2)];
        let lt = bin(BinaryOp::Lt, attr(0, 0), attr(1, 0));
        assert_eq!(lt.eval_predicate(&binding), Some(true));
        let ge = bin(BinaryOp::Ge, attr(0, 0), attr(1, 0));
        assert_eq!(ge.eval_predicate(&binding), Some(false));
    }

    #[test]
    fn cross_kind_eq_is_false_not_error() {
        let (_, a) = setup();
        let e = ev(a, 1, 5);
        let binding = [Some(&e)];
        let eq = bin(BinaryOp::Eq, attr(0, 1), Expr::Const(Value::Int(1)));
        assert_eq!(eq.eval_predicate(&binding), Some(false));
        let ne = bin(BinaryOp::Ne, attr(0, 1), Expr::Const(Value::Int(1)));
        assert_eq!(ne.eval_predicate(&binding), Some(true));
    }

    #[test]
    fn cross_kind_ordering_fails_predicate() {
        let (_, a) = setup();
        let e = ev(a, 1, 5);
        let binding = [Some(&e)];
        let lt = bin(BinaryOp::Lt, attr(0, 1), Expr::Const(Value::Int(1)));
        // fully bound but not evaluable -> failed, not undecided
        assert_eq!(lt.eval_predicate(&binding), Some(false));
    }

    #[test]
    fn logic_ops() {
        let t = Expr::Const(Value::Bool(true));
        let f = Expr::Const(Value::Bool(false));
        let binding: [Option<&EventRef>; 0] = [];
        assert_eq!(
            bin(BinaryOp::And, t.clone(), f.clone()).eval(&binding),
            Some(Value::Bool(false))
        );
        assert_eq!(
            bin(BinaryOp::Or, t.clone(), f.clone()).eval(&binding),
            Some(Value::Bool(true))
        );
        assert_eq!(
            Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(f)
            }
            .eval(&binding),
            Some(Value::Bool(true))
        );
    }

    #[test]
    fn neg_overflow_yields_none() {
        let binding: [Option<&EventRef>; 0] = [];
        let e = Expr::Unary {
            op: UnaryOp::Neg,
            expr: Box::new(Expr::Const(Value::Int(i64::MIN))),
        };
        assert_eq!(e.eval(&binding), None);
    }

    #[test]
    fn component_mask_collects_refs() {
        let expr = bin(
            BinaryOp::Add,
            attr(0, 0),
            bin(BinaryOp::Mul, attr(3, 0), Expr::Ts(2)),
        );
        let mask = expr.components();
        assert!(mask.contains(0));
        assert!(!mask.contains(1));
        assert!(mask.contains(2));
        assert!(mask.contains(3));
        assert_eq!(mask.max(), Some(3));
        assert_eq!(mask.iter_ones().collect::<Vec<_>>(), vec![0, 2, 3]);
    }

    #[test]
    fn mask_subset() {
        let mut a = ComponentMask::default();
        a.insert(1);
        let mut b = ComponentMask::default();
        b.insert(1);
        b.insert(2);
        assert!(a.subset_of(b));
        assert!(!b.subset_of(a));
        assert!(ComponentMask::default().is_empty());
        assert_eq!(ComponentMask::default().max(), None);
    }
}
