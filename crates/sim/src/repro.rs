//! Repro emission: renders a shrunk failing case as a self-contained
//! Rust `#[test]` that rebuilds the exact [`CaseData`] literal and
//! asserts [`crate::diff::check_case`] is clean. The snippet is what the nightly sim
//! job uploads and what `tests/regressions.rs` promotes; the same case
//! also replays live via `sequin sim --seed S --case N`.

use crate::case::{CaseData, SimItem};
use crate::diff::Mismatch;

/// Renders a failing case as a ready-to-paste regression test.
///
/// `seed`/`case_ix` identify the *original* (pre-shrink) case so the
/// header records a live replay command; the emitted literal is the
/// shrunk case itself, which no seed regenerates.
pub fn emit_test(
    name: &str,
    seed: u64,
    case_ix: u64,
    case: &CaseData,
    mismatches: &[Mismatch],
) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "/// Shrunk from `sequin sim --seed {seed} --cases {}` (case {case_ix}).\n",
        case_ix + 1
    ));
    s.push_str("/// Replay the original: `sequin sim --seed ");
    s.push_str(&format!("{seed} --case {case_ix}`.\n"));
    for m in mismatches {
        s.push_str(&format!("/// Failed path: {} — {}\n", m.path, m.detail));
    }
    s.push_str(&format!("#[test]\nfn {name}() {{\n"));
    s.push_str("    use sequin::sim::case::*;\n");
    s.push_str("    let case = CaseData {\n");
    s.push_str("        query: QueryPlan {\n");
    s.push_str("            comps: vec![\n");
    for c in &case.query.comps {
        s.push_str(&format!(
            "                CompPlan {{ negated: {}, types: vec!{:?}, var: {:?}.into() }},\n",
            c.negated, c.types, c.var
        ));
    }
    s.push_str("            ],\n");
    s.push_str(&format!("            window: {},\n", case.query.window));
    s.push_str("            preds: vec![\n");
    for p in &case.query.preds {
        s.push_str(&format!(
            "                LocalPred {{ comp: {}, op: PredOp::{:?}, value: {} }},\n",
            p.comp, p.op, p.value
        ));
    }
    s.push_str("            ],\n");
    s.push_str(&format!("            tag_join: {},\n", case.query.tag_join));
    s.push_str(&format!(
        "            project_first: {},\n",
        case.query.project_first
    ));
    s.push_str("        },\n");
    s.push_str("        items: vec![\n");
    for it in &case.items {
        match it {
            SimItem::Event(e) => s.push_str(&format!(
                "            SimItem::Event(SimEvent {{ ty: {}, id: {}, ts: {}, x: {}, tag: {} }}),\n",
                e.ty, e.id, e.ts, e.x, e.tag
            )),
            SimItem::Punct(ts) => s.push_str(&format!("            SimItem::Punct({ts}),\n")),
        }
    }
    s.push_str("        ],\n");
    let c = &case.config;
    s.push_str("        config: CaseConfig {\n");
    s.push_str(&format!("            k: {},\n", c.k));
    s.push_str(&format!(
        "            policy: DisorderPolicy::{:?},\n",
        c.policy
    ));
    s.push_str(&format!("            purge_every: {:?},\n", c.purge_every));
    s.push_str(&format!("            watermark: {},\n", c.watermark));
    s.push_str(&format!("            batch: {},\n", c.batch));
    s.push_str(&format!("            ckpt_every: {},\n", c.ckpt_every));
    s.push_str(&format!("            crash_at: {},\n", c.crash_at));
    s.push_str(&format!("            loopback: {},\n", c.loopback));
    s.push_str(&format!(
        "            loopback_shards: {},\n",
        c.loopback_shards
    ));
    s.push_str("        },\n");
    s.push_str("    };\n");
    s.push_str("    let mismatches = sequin::sim::diff::check_case(&case, 0);\n");
    s.push_str("    assert!(mismatches.is_empty(), \"{mismatches:?}\");\n");
    s.push_str("}\n");
    s
}
