//! Failing-case minimization.
//!
//! Given a case on which [`check_case`](crate::check_case) reports mismatches, the shrinker
//! searches for a smaller case that *still* mismatches: it drops stream
//! items (ddmin-style chunk removal, then singles), strips query terms
//! (predicates, projections, tag joins, negations, alternation arms),
//! shrinks the window, and simplifies the configuration — keeping each
//! mutation only if the failure survives. Every candidate is validated
//! through the analyzer first, so shrinking never "fails" by producing
//! an ill-formed query.
//!
//! All mutations preserve replay validity by construction: removing
//! events only raises the true suffix-minimum, so existing punctuations
//! remain safe, and the measured lateness can only decrease, so the
//! stored `K` stays sufficient. The shrunk case therefore replays
//! through exactly the same [`check_case`](crate::check_case) entry point as the original.

use crate::case::{CaseData, QueryPlan, SimItem};
use crate::diff::{check_case_sharded, Mismatch, Sabotage};

/// Hard ceiling on [`check_case`](crate::check_case) invocations per shrink, so shrinking a
/// pathological case cannot stall the run.
const MAX_CHECKS: usize = 500;

/// Outcome of shrinking one failing case.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The minimized case (still failing).
    pub case: CaseData,
    /// The mismatches the minimized case produces.
    pub mismatches: Vec<Mismatch>,
    /// How many [`check_case`](crate::check_case) calls the search spent.
    pub checks: usize,
}

struct Shrinker {
    sabotage: Sabotage,
    shard_counts: Vec<usize>,
    checks: usize,
}

impl Shrinker {
    /// Returns the candidate's mismatches if it is valid, still failing,
    /// and the check budget is not exhausted.
    fn still_fails(&mut self, candidate: &CaseData) -> Option<Vec<Mismatch>> {
        if self.checks >= MAX_CHECKS {
            return None;
        }
        let registry = crate::case::sim_registry();
        if candidate.query.build(&registry).is_err() {
            return None; // ill-formed candidate; not a real reduction
        }
        self.checks += 1;
        let m = check_case_sharded(candidate, self.sabotage, &self.shard_counts);
        if m.is_empty() {
            None
        } else {
            Some(m)
        }
    }
}

/// Minimizes `case` (which must fail under `sabotage`) and returns the
/// smallest still-failing case found within the check budget. If the
/// input does not actually fail, it is returned unshrunk with its (empty)
/// mismatch list.
pub fn shrink(case: &CaseData, sabotage: Sabotage, shard_counts: &[usize]) -> Shrunk {
    let mut sh = Shrinker {
        sabotage,
        shard_counts: shard_counts.to_vec(),
        checks: 1,
    };
    let mut best = case.clone();
    let mut mismatches = check_case_sharded(&best, sabotage, shard_counts);
    if mismatches.is_empty() {
        return Shrunk {
            case: best,
            mismatches,
            checks: sh.checks,
        };
    }

    loop {
        let before = (best.items.len(), best.query.comps.len());

        shrink_items(&mut sh, &mut best, &mut mismatches);
        shrink_query(&mut sh, &mut best, &mut mismatches);
        shrink_config(&mut sh, &mut best, &mut mismatches);

        let after = (best.items.len(), best.query.comps.len());
        if after == before || sh.checks >= MAX_CHECKS {
            break;
        }
    }

    Shrunk {
        case: best,
        mismatches,
        checks: sh.checks,
    }
}

/// ddmin-lite: try removing halves, then quarters, …, then single items.
fn shrink_items(sh: &mut Shrinker, best: &mut CaseData, mismatches: &mut Vec<Mismatch>) {
    let mut chunk = (best.items.len() / 2).max(1);
    loop {
        let mut start = 0;
        while start < best.items.len() {
            let end = (start + chunk).min(best.items.len());
            let mut candidate = best.clone();
            candidate.items.drain(start..end);
            if let Some(m) = sh.still_fails(&candidate) {
                *best = candidate;
                *mismatches = m;
                // keep `start` — the next chunk has shifted into place
            } else {
                start = end;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk = (chunk / 2).max(1);
    }
}

/// Strips query terms one at a time: predicates, projection, tag join,
/// whole negated components, alternation arms, then window halving.
fn shrink_query(sh: &mut Shrinker, best: &mut CaseData, mismatches: &mut Vec<Mismatch>) {
    // drop predicates
    let mut ix = 0;
    while ix < best.query.preds.len() {
        let mut candidate = best.clone();
        candidate.query.preds.remove(ix);
        if let Some(m) = sh.still_fails(&candidate) {
            *best = candidate;
            *mismatches = m;
        } else {
            ix += 1;
        }
    }

    for flag in [true, false] {
        let mut candidate = best.clone();
        if flag {
            candidate.query.project_first = false;
        } else {
            candidate.query.tag_join = false;
        }
        if candidate != *best {
            if let Some(m) = sh.still_fails(&candidate) {
                *best = candidate;
                *mismatches = m;
            }
        }
    }

    // drop whole components (negations are free; positives only while at
    // least one remains — the analyzer check rejects the rest)
    let mut ix = 0;
    while ix < best.query.comps.len() {
        let mut candidate = best.clone();
        remove_comp(&mut candidate.query, ix);
        if let Some(m) = sh.still_fails(&candidate) {
            *best = candidate;
            *mismatches = m;
        } else {
            ix += 1;
        }
    }

    // collapse alternations to their first arm
    for ix in 0..best.query.comps.len() {
        if best.query.comps[ix].types.len() > 1 {
            let mut candidate = best.clone();
            candidate.query.comps[ix].types.truncate(1);
            if let Some(m) = sh.still_fails(&candidate) {
                *best = candidate;
                *mismatches = m;
            }
        }
    }

    // halve the window toward 1
    while best.query.window > 1 {
        let mut candidate = best.clone();
        candidate.query.window = (candidate.query.window / 2).max(1);
        if let Some(m) = sh.still_fails(&candidate) {
            *best = candidate;
            *mismatches = m;
        } else {
            break;
        }
    }
}

/// Simplifies the configuration: single-item batches, no loopback, the
/// conservative policy, a smaller `K`, eager checkpoints.
fn shrink_config(sh: &mut Shrinker, best: &mut CaseData, mismatches: &mut Vec<Mismatch>) {
    let try_cfg = |sh: &mut Shrinker,
                   best: &mut CaseData,
                   mismatches: &mut Vec<Mismatch>,
                   mutate: &dyn Fn(&mut CaseData)| {
        let mut candidate = best.clone();
        mutate(&mut candidate);
        if candidate != *best {
            if let Some(m) = sh.still_fails(&candidate) {
                *best = candidate;
                *mismatches = m;
            }
        }
    };
    try_cfg(sh, best, mismatches, &|c| c.config.loopback = false);
    try_cfg(sh, best, mismatches, &|c| {
        c.config.policy = crate::case::DisorderPolicy::Conservative;
    });
    try_cfg(sh, best, mismatches, &|c| c.config.batch = 1);
    try_cfg(sh, best, mismatches, &|c| c.config.ckpt_every = 1);
    try_cfg(sh, best, mismatches, &|c| {
        c.config.crash_at = c.items.len() as u64;
    });
    while best.config.k > 0 {
        let mut candidate = best.clone();
        candidate.config.k /= 2;
        if let Some(m) = sh.still_fails(&candidate) {
            *best = candidate;
            *mismatches = m;
        } else {
            break;
        }
    }
}

/// Removes component `ix`, dropping its predicates and re-pointing the
/// survivors. Variable names stay attached to their components, so the
/// plan remains consistent without renaming.
fn remove_comp(plan: &mut QueryPlan, ix: usize) {
    plan.comps.remove(ix);
    plan.preds.retain(|p| p.comp != ix);
    for p in &mut plan.preds {
        if p.comp > ix {
            p.comp -= 1;
        }
    }
}

/// A terse one-line description of a case, for progress lines.
pub fn describe(case: &CaseData) -> String {
    let events = case
        .items
        .iter()
        .filter(|i| matches!(i, SimItem::Event(_)))
        .count();
    let puncts = case.items.len() - events;
    format!(
        "{} ({} events, {} punctuations, K={}, purge={:?})",
        case.query.text(),
        events,
        puncts,
        case.config.k,
        case.config.purge_every
    )
}
