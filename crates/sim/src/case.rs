//! Seed-driven generation of (query, stream, configuration) cases.
//!
//! A [`CaseData`] is a plain-data description of one differential test
//! case: a [`QueryPlan`] (rendered through both [`QueryBuilder`]
//! and the text parser), an arrival-ordered item list with disorder,
//! duplicates and punctuations already baked in, and a [`CaseConfig`]
//! choosing the engine knobs the case exercises. Everything derives from
//! a single `u64` seed through [`sequin_prng::Rng`], so any case can be
//! regenerated from its `--seed`/`--case` pair, and the shrinker can
//! mutate the plain data directly while preserving replayability.

use std::sync::Arc;

pub use sequin_engine::DisorderPolicy;
use sequin_netsim::{delay_shuffle, measure_disorder, punctuate, Crash};
use sequin_prng::Rng;
use sequin_query::{pred, AnalyzeError, Query, QueryBuilder};
use sequin_types::{
    Event, EventId, EventRef, StreamItem, Timestamp, TypeRegistry, Value, ValueKind,
};

/// The fixed simulation alphabet: five event types, each with integer
/// attributes `x` (the predicate knob) and `tag` (the correlation key).
pub const TYPE_NAMES: [&str; 5] = ["A", "B", "C", "D", "E"];

/// Builds the simulation schema shared by every case.
pub fn sim_registry() -> Arc<TypeRegistry> {
    let mut reg = TypeRegistry::new();
    for name in TYPE_NAMES {
        reg.declare(name, &[("x", ValueKind::Int), ("tag", ValueKind::Int)])
            .expect("unique names");
    }
    Arc::new(reg)
}

/// One pattern component of a [`QueryPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompPlan {
    /// Negated component (`!T`).
    pub negated: bool,
    /// Indexes into [`TYPE_NAMES`]; more than one forms an alternation.
    pub types: Vec<usize>,
    /// Variable name bound by the component.
    pub var: String,
}

/// Comparison operator of a [`LocalPred`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredOp {
    /// `var.x < value`
    Lt,
    /// `var.x >= value`
    Ge,
}

/// A single-variable `WHERE` conjunct `var.x OP value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalPred {
    /// Index into [`QueryPlan::comps`] of the constrained component.
    pub comp: usize,
    /// Comparison operator.
    pub op: PredOp,
    /// Right-hand constant.
    pub value: i64,
}

/// A generated SEQ query, as plain data.
///
/// The plan renders two ways — through [`QueryBuilder`] and as `PATTERN`
/// text for the parser — and the harness asserts both front ends produce
/// the same [`Query`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPlan {
    /// Components in pattern order (positives and negations).
    pub comps: Vec<CompPlan>,
    /// `WITHIN` window in ticks.
    pub window: u64,
    /// Single-variable predicates.
    pub preds: Vec<LocalPred>,
    /// Chain `v_{i}.tag == v_{i+1}.tag` across consecutive positives
    /// (gives the query a partition scheme).
    pub tag_join: bool,
    /// Add `RETURN v.x` for the first positive component.
    pub project_first: bool,
}

impl QueryPlan {
    /// Indexes of the positive (non-negated) components.
    pub fn positive_ixs(&self) -> Vec<usize> {
        (0..self.comps.len())
            .filter(|&i| !self.comps[i].negated)
            .collect()
    }

    /// The query as `PATTERN` text (parseable by [`sequin_query::parse`]).
    pub fn text(&self) -> String {
        let comps: Vec<String> = self
            .comps
            .iter()
            .map(|c| {
                let tys: Vec<&str> = c.types.iter().map(|&t| TYPE_NAMES[t]).collect();
                format!(
                    "{}{} {}",
                    if c.negated { "!" } else { "" },
                    tys.join("|"),
                    c.var
                )
            })
            .collect();
        let mut conjuncts: Vec<String> = self
            .preds
            .iter()
            .map(|p| {
                let op = match p.op {
                    PredOp::Lt => "<",
                    PredOp::Ge => ">=",
                };
                format!("{}.x {} {}", self.comps[p.comp].var, op, p.value)
            })
            .collect();
        if self.tag_join {
            let pos = self.positive_ixs();
            for pair in pos.windows(2) {
                conjuncts.push(format!(
                    "{}.tag == {}.tag",
                    self.comps[pair[0]].var, self.comps[pair[1]].var
                ));
            }
        }
        let mut out = format!("PATTERN SEQ({})", comps.join(", "));
        if !conjuncts.is_empty() {
            out.push_str(&format!(" WHERE {}", conjuncts.join(" AND ")));
        }
        out.push_str(&format!(" WITHIN {}", self.window));
        if self.project_first {
            if let Some(&first) = self.positive_ixs().first() {
                out.push_str(&format!(" RETURN {}.x", self.comps[first].var));
            }
        }
        out
    }

    /// Builds the query through [`QueryBuilder`] (the programmatic front
    /// end the tentpole exercises).
    pub fn build(&self, registry: &TypeRegistry) -> Result<Arc<Query>, AnalyzeError> {
        let mut b = QueryBuilder::new();
        for c in &self.comps {
            let tys: Vec<&str> = c.types.iter().map(|&t| TYPE_NAMES[t]).collect();
            b = if c.negated {
                b.negated_any(&tys, &c.var)
            } else {
                b.component_any(&tys, &c.var)
            };
        }
        for p in &self.preds {
            let lhs = pred::attr(&self.comps[p.comp].var, "x");
            let rhs = pred::int(p.value);
            b = b.filter(match p.op {
                PredOp::Lt => lhs.lt(rhs),
                PredOp::Ge => lhs.ge(rhs),
            });
        }
        if self.tag_join {
            let pos = self.positive_ixs();
            for pair in pos.windows(2) {
                b = b.filter(
                    pred::attr(&self.comps[pair[0]].var, "tag")
                        .eq(pred::attr(&self.comps[pair[1]].var, "tag")),
                );
            }
        }
        b = b.within(self.window);
        if self.project_first {
            if let Some(&first) = self.positive_ixs().first() {
                b = b.returns(&self.comps[first].var, "x");
            }
        }
        b.build(registry)
    }
}

/// A generated event, as plain data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimEvent {
    /// Index into [`TYPE_NAMES`].
    pub ty: usize,
    /// Event id (duplicated deliveries share the id).
    pub id: u64,
    /// Occurrence timestamp in ticks.
    pub ts: u64,
    /// The `x` attribute.
    pub x: i64,
    /// The `tag` attribute.
    pub tag: i64,
}

impl SimEvent {
    /// Materializes the event against the simulation schema.
    pub fn to_event(self, registry: &TypeRegistry) -> EventRef {
        Arc::new(
            Event::builder(
                registry.lookup(TYPE_NAMES[self.ty]).expect("sim schema"),
                Timestamp::new(self.ts),
            )
            .id(EventId::new(self.id))
            .attr(Value::Int(self.x))
            .attr(Value::Int(self.tag))
            .build(),
        )
    }
}

/// One arrival-ordered stream item, as plain data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimItem {
    /// An event delivery (possibly a duplicate of an earlier one).
    Event(SimEvent),
    /// A punctuation asserting the low-watermark `ts`.
    Punct(u64),
}

/// Engine/runtime knobs a case exercises.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseConfig {
    /// Disorder bound `K` (always at least the stream's measured maximum
    /// lateness, so the run is K-slack valid).
    pub k: u64,
    /// Disorder-handling policy the case runs under.
    pub policy: DisorderPolicy,
    /// Purge cadence (`None` = never purge).
    pub purge_every: Option<u32>,
    /// Watermark source: 0 = K-slack, 1 = punctuation, 2 = both.
    pub watermark: u8,
    /// Chunk size for the batched-ingestion path.
    pub batch: usize,
    /// Checkpoint cadence for the crash/resume path.
    pub ckpt_every: u64,
    /// Item index the crash/resume path dies at (clamped to the stream).
    pub crash_at: u64,
    /// Run the networked loopback path for this case.
    pub loopback: bool,
    /// Worker count for the loopback server engine.
    pub loopback_shards: usize,
}

/// A fully described differential test case.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseData {
    /// The generated query.
    pub query: QueryPlan,
    /// The arrival-ordered stream (disorder, duplicates and punctuations
    /// already applied).
    pub items: Vec<SimItem>,
    /// Engine knobs.
    pub config: CaseConfig,
}

impl CaseData {
    /// Materializes the item list against the simulation schema.
    pub fn stream(&self, registry: &TypeRegistry) -> Vec<StreamItem> {
        items_to_stream(&self.items, registry)
    }

    /// The distinct events of the stream (duplicates removed), sorted by
    /// `(ts, id)` — the oracle's input.
    pub fn unique_events(&self, registry: &TypeRegistry) -> Vec<EventRef> {
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for it in &self.items {
            if let SimItem::Event(e) = it {
                if seen.insert((e.ts, e.id)) {
                    out.push(e.to_event(registry));
                }
            }
        }
        out.sort_by_key(|e| (e.ts(), e.id()));
        out
    }

    /// Generates the case for `(seed, case_ix)`. Deterministic: the same
    /// pair always yields the same case.
    pub fn generate(seed: u64, case_ix: u64) -> CaseData {
        let mut rng = Rng::seed_from_u64(case_seed(seed, case_ix));
        let query = gen_query(&mut rng);
        let (items, measured_lateness) = gen_items(&mut rng);
        let config = gen_config(&mut rng, &items, measured_lateness);
        CaseData {
            query,
            items,
            config,
        }
    }
}

/// Draws the engine/runtime knobs for a generated item list (shared by
/// the single-query and multi-query generators).
pub(crate) fn gen_config(rng: &mut Rng, items: &[SimItem], measured_lateness: u64) -> CaseConfig {
    let has_punct = items.iter().any(|i| matches!(i, SimItem::Punct(_)));
    let watermark = if has_punct {
        if rng.gen_bool(0.5) {
            1 // punctuation only
        } else {
            2 // both
        }
    } else {
        0 // k-slack
    };
    let purge_every = match rng.gen_range(0..10u32) {
        0 => None,                              // never purge
        1..=5 => Some(1),                       // eager (purge bugs bite here)
        6 | 7 => Some(rng.gen_range(2..=5u32)), // small batches
        _ => Some(64),                          // the default cadence
    };
    let crash_at = gen_crash_point(rng, items);
    CaseConfig {
        k: measured_lateness + rng.gen_range(0..=3u64),
        policy: gen_policy(rng),
        purge_every,
        watermark,
        batch: *[1usize, 2, 3, 5, 8, 64]
            .get(rng.gen_range(0..6usize))
            .expect("in range"),
        ckpt_every: rng.gen_range(3..=17u64),
        crash_at,
        loopback: rng.gen_bool(0.25),
        loopback_shards: if rng.gen_bool(0.5) { 1 } else { 2 },
    }
}

/// Draws a [`DisorderPolicy`], covering all four modes (a few adaptive
/// accuracy levels included) with conservative as the most common.
pub(crate) fn gen_policy(rng: &mut Rng) -> DisorderPolicy {
    match rng.gen_range(0..8u32) {
        0..=2 => DisorderPolicy::Conservative,
        3 | 4 => DisorderPolicy::Speculative,
        5 => DisorderPolicy::Lazy,
        _ => DisorderPolicy::AdaptiveSlack {
            accuracy: *[0u8, 50, 90, 100]
                .get(rng.gen_range(0..4usize))
                .expect("in range"),
        },
    }
}

/// Mixes `(seed, case_ix)` into one SplitMix64 seed.
pub fn case_seed(seed: u64, case_ix: u64) -> u64 {
    seed ^ case_ix.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Materializes a plain-data item list against the simulation schema.
pub fn items_to_stream(items: &[SimItem], registry: &TypeRegistry) -> Vec<StreamItem> {
    items
        .iter()
        .map(|it| match it {
            SimItem::Event(e) => StreamItem::Event(e.to_event(registry)),
            SimItem::Punct(ts) => StreamItem::Punctuation(Timestamp::new(*ts)),
        })
        .collect()
}

pub(crate) fn gen_query(rng: &mut Rng) -> QueryPlan {
    let m = rng.gen_range(1..=3usize);
    let pos_vars = ["a", "b", "c"];
    let mut comps: Vec<CompPlan> = (0..m)
        .map(|i| {
            let types = if rng.gen_bool(0.2) {
                let first = rng.gen_range(0..TYPE_NAMES.len());
                let second = (first + rng.gen_range(1..TYPE_NAMES.len())) % TYPE_NAMES.len();
                vec![first, second]
            } else {
                vec![rng.gen_range(0..TYPE_NAMES.len())]
            };
            CompPlan {
                negated: false,
                types,
                var: pos_vars[i].to_owned(),
            }
        })
        .collect();

    // up to two negation flanks (leading / middle / trailing), never
    // adjacent to each other
    let neg_vars = ["na", "nb"];
    let mut negs = 0usize;
    let tries = if rng.gen_bool(0.35) {
        1 + usize::from(rng.gen_bool(0.3))
    } else {
        0
    };
    for _ in 0..tries {
        let at = rng.gen_range(0..=comps.len());
        let left_neg = at > 0 && comps[at - 1].negated;
        let right_neg = at < comps.len() && comps[at].negated;
        if left_neg || right_neg {
            continue;
        }
        comps.insert(
            at,
            CompPlan {
                negated: true,
                types: vec![rng.gen_range(0..TYPE_NAMES.len())],
                var: neg_vars[negs].to_owned(),
            },
        );
        negs += 1;
    }

    let mut preds = Vec::new();
    for (ix, _) in comps.iter().enumerate() {
        let p = if comps[ix].negated { 0.4 } else { 0.3 };
        if rng.gen_bool(p) {
            let (op, value) = if rng.gen_bool(0.5) {
                (PredOp::Lt, rng.gen_range(5..=18i64))
            } else {
                (PredOp::Ge, rng.gen_range(2..=10i64))
            };
            preds.push(LocalPred {
                comp: ix,
                op,
                value,
            });
        }
    }

    let positives = comps.iter().filter(|c| !c.negated).count();
    QueryPlan {
        window: rng.gen_range(4..=48u64),
        tag_join: positives >= 2 && rng.gen_bool(0.35),
        project_first: rng.gen_bool(0.3),
        comps,
        preds,
    }
}

/// Generates the arrival-ordered item list; returns it together with its
/// measured maximum lateness (the minimal valid `K`).
pub(crate) fn gen_items(rng: &mut Rng) -> (Vec<SimItem>, u64) {
    let n = rng.gen_range(12..=40usize);
    let mut ts = 0u64;
    let events: Vec<SimEvent> = (0..n)
        .map(|i| {
            // occasional zero gaps exercise equal-timestamp ties
            ts += if rng.gen_bool(0.15) {
                0
            } else {
                rng.gen_range(1..=3u64)
            };
            SimEvent {
                ty: rng.gen_range(0..TYPE_NAMES.len()),
                id: i as u64,
                ts: ts.max(1),
                x: rng.gen_range(0..=20i64),
                tag: rng.gen_range(0..=3i64),
            }
        })
        .collect();

    // disorder schedule: in-order / delay-shuffled / shuffled + a reversed
    // burst (models a retransmitted chunk arriving back-to-front)
    let registry = sim_registry();
    let refs: Vec<EventRef> = events.iter().map(|e| e.to_event(&registry)).collect();
    let schedule = rng.gen_range(0..4u32);
    let arrival: Vec<StreamItem> = match schedule {
        0 => refs.iter().cloned().map(StreamItem::Event).collect(),
        _ => {
            let ooo = rng.gen_range(0.1..0.6);
            let max_delay = rng.gen_range(2..=30u64);
            let sub = rng.next_u64();
            let mut s = delay_shuffle(&refs, ooo, max_delay, sub);
            if schedule == 3 && s.len() >= 6 {
                let start = rng.gen_range(0..s.len() - 4);
                let len = rng.gen_range(3..=(s.len() - start).min(8));
                s[start..start + len].reverse();
            }
            s
        }
    };
    let mut items: Vec<SimItem> = arrival
        .iter()
        .map(|it| match it {
            StreamItem::Event(e) => SimItem::Event(sim_event_of(e)),
            StreamItem::Punctuation(t) => SimItem::Punct(t.ticks()),
        })
        .collect();

    // duplicate deliveries: re-send a few events shortly after the original
    if rng.gen_bool(0.3) {
        for _ in 0..rng.gen_range(1..=3usize) {
            let src = rng.gen_range(0..items.len());
            if let SimItem::Event(e) = items[src] {
                let at = (src + rng.gen_range(1..=4usize)).min(items.len());
                items.insert(at, SimItem::Event(e));
            }
        }
    }

    // omniscient punctuations over the final arrival order (safe by
    // construction: each asserts the true minimum of the remaining suffix)
    if rng.gen_bool(0.4) {
        let stream = items_to_stream(&items, &registry);
        let period = rng.gen_range(3..=10usize);
        items = punctuate(&stream, period)
            .iter()
            .map(|it| match it {
                StreamItem::Event(e) => SimItem::Event(sim_event_of(e)),
                StreamItem::Punctuation(t) => SimItem::Punct(t.ticks()),
            })
            .collect();
    }

    let lateness = measure_disorder(&items_to_stream(&items, &registry))
        .max_lateness
        .ticks();
    (items, lateness)
}

fn gen_crash_point(rng: &mut Rng, items: &[SimItem]) -> u64 {
    let registry = sim_registry();
    let stream = items_to_stream(items, &registry);
    if rng.gen_bool(0.5) {
        // crash when the stream first reaches a random occurrence timestamp
        let max_ts = items
            .iter()
            .filter_map(|it| match it {
                SimItem::Event(e) => Some(e.ts),
                SimItem::Punct(_) => None,
            })
            .max()
            .unwrap_or(1);
        let crash = Crash::AtWatermark(Timestamp::new(rng.gen_range(1..=max_ts)));
        crash.split(&stream).1
    } else {
        rng.gen_range(0..=items.len() as u64)
    }
}

fn sim_event_of(e: &EventRef) -> SimEvent {
    let int_attr = |ix: usize| match e.attrs().get(ix) {
        Some(Value::Int(v)) => *v,
        _ => 0,
    };
    SimEvent {
        ty: e.event_type().index(),
        id: e.id().get(),
        ts: e.ts().ticks(),
        x: int_attr(0),
        tag: int_attr(1),
    }
}
