//! Multi-query differential mode: seed-generated query *sets* with
//! overlapping prefixes, checked shared-plan against independent
//! evaluation.
//!
//! Where the single-query mode pins each production path against one
//! canonical engine, this mode pins the shared multi-query compiler
//! (`sequin_engine::SharedMultiEngine` and the server core built on it)
//! against the reference that defines its correctness contract: every
//! query evaluated **independently** on its own single-threaded engine.
//! Query sets are generated with deliberate prefix overlap — most
//! queries are siblings of an earlier one, differing only in their final
//! component, a local predicate, or the projection — so the shared plan
//! actually pools stacks and forms prefix groups instead of degenerating
//! into disjoint per-query state. Every query additionally draws its own
//! [`DisorderPolicy`], so mixed-policy sets exercise the policy-class
//! pooling rules (fixed-bound queries share a watermark epoch; each
//! adaptive accuracy gets its own).
//!
//! Checked paths, all against the per-query independent reference:
//!
//! * shared-plan item-by-item ingestion — **identical** output per
//!   query, including emission bookkeeping and retractions;
//! * shared-plan batched ingestion — identical output;
//! * a durable shared-plan server core crashed mid-stream and resumed as
//!   an *independent sharded* core (the checkpoint interchange contract)
//!   — exactly-once deliveries per query, with every per-query policy
//!   surviving the restart through the checkpoint envelope;
//! * an independent sharded server core — identical output (ties the
//!   two backends together end to end);
//! * the networked loopback with the full query set, each query carrying
//!   its policy request through SUBSCRIBE negotiation — byte-identical
//!   frames, verified inside [`sequin_server::loopback_run_with_policies`].
//!
//! The [`Sabotage`] knobs hit every engine under test but never the
//! reference, so a healthy harness must report mismatches — the same
//! honesty check the single-query mode carries. Multi-query failures are
//! reported unshrunk: the replay pair (`--multi --seed S --case N`)
//! regenerates the exact case.

use std::time::{Duration, Instant};

use sequin_engine::{
    DisorderPolicy, Engine, EngineConfig, NativeEngine, OutputItem, QueryId, SharedMultiEngine,
    Strategy,
};
use sequin_prng::Rng;
use sequin_query::Query;
use sequin_server::{loopback_run_with_policies, CoreConfig, EngineCore};
use sequin_types::{StreamItem, TypeRegistry};
use std::sync::Arc;

use crate::case::{
    case_seed, gen_config, gen_items, gen_policy, gen_query, items_to_stream, sim_registry,
    CaseConfig, LocalPred, PredOp, QueryPlan, SimItem, TYPE_NAMES,
};
use crate::diff::{
    delivery_multiset, engine_config_from, first_diff, repr, Mismatch, Path, Sabotage,
};
use crate::runner::SimOptions;

/// Salt mixed into the case seed so multi-query cases draw from a
/// different stream than single-query cases under the same `--seed`.
const MULTI_SALT: u64 = 0x4D55_4C54_4951_5259; // "MULTIQRY"

/// A fully described multi-query differential case.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiCase {
    /// The generated query set (textually distinct; most entries are
    /// prefix siblings of an earlier one).
    pub queries: Vec<QueryPlan>,
    /// Per-query disorder policies, parallel to `queries`. Drawn
    /// independently so most cases mix policy classes within one shared
    /// plan.
    pub policies: Vec<DisorderPolicy>,
    /// The arrival-ordered stream (disorder, duplicates and
    /// punctuations already applied), shared by every query.
    pub items: Vec<SimItem>,
    /// Engine knobs, shared by every path. `config.policy` is the
    /// server *default* policy; the per-query [`MultiCase::policies`]
    /// override it query by query.
    pub config: CaseConfig,
}

impl MultiCase {
    /// Materializes the item list against the simulation schema.
    pub fn stream(&self, registry: &TypeRegistry) -> Vec<StreamItem> {
        items_to_stream(&self.items, registry)
    }

    /// Generates the case for `(seed, case_ix)`. Deterministic: the
    /// same pair always yields the same case.
    pub fn generate(seed: u64, case_ix: u64) -> MultiCase {
        let mut rng = Rng::seed_from_u64(case_seed(seed, case_ix) ^ MULTI_SALT);
        let (items, measured_lateness) = gen_items(&mut rng);
        let nq = rng.gen_range(2..=4usize);
        let mut queries = vec![gen_query(&mut rng)];
        let mut attempts = 0;
        while queries.len() < nq && attempts < 32 {
            attempts += 1;
            let candidate = if rng.gen_bool(0.7) {
                // prefix sibling: clone an existing query, keep its
                // leading components and window, vary the tail
                let base = queries[rng.gen_range(0..queries.len())].clone();
                derive_sibling(&mut rng, base)
            } else {
                gen_query(&mut rng)
            };
            if queries.iter().all(|q| q.text() != candidate.text()) {
                queries.push(candidate);
            }
        }
        let policies = queries.iter().map(|_| gen_policy(&mut rng)).collect();
        let config = gen_config(&mut rng, &items, measured_lateness);
        MultiCase {
            queries,
            policies,
            items,
            config,
        }
    }
}

/// Derives a sibling that shares `base`'s leading components and window
/// (so the shared plan can pool its prefix) but differs in its tail.
fn derive_sibling(rng: &mut Rng, mut q: QueryPlan) -> QueryPlan {
    let last = q.comps.len() - 1;
    match rng.gen_range(0..3u32) {
        0 => {
            // re-point the final component at a different type
            let cur = q.comps[last].types[0];
            let next = (cur + rng.gen_range(1..TYPE_NAMES.len())) % TYPE_NAMES.len();
            q.comps[last].types = vec![next];
        }
        1 => {
            // replace the final component's local predicate
            let (op, value) = if rng.gen_bool(0.5) {
                (PredOp::Lt, rng.gen_range(5..=18i64))
            } else {
                (PredOp::Ge, rng.gen_range(2..=10i64))
            };
            q.preds.retain(|p| p.comp != last);
            q.preds.push(LocalPred {
                comp: last,
                op,
                value,
            });
        }
        _ => {
            // same pattern, different projection — pools every stack
            q.project_first = !q.project_first;
        }
    }
    q
}

/// Splits an interleaved `(QueryId, output)` sequence into per-query
/// output lists, preserving order.
fn split_outputs(
    nq: usize,
    out: impl IntoIterator<Item = (QueryId, OutputItem)>,
) -> Vec<Vec<OutputItem>> {
    let mut per: Vec<Vec<OutputItem>> = (0..nq).map(|_| Vec::new()).collect();
    for (qid, o) in out {
        per[qid.index()].push(o);
    }
    per
}

/// Runs every shared-plan path for `case`, returning all disagreements
/// against the independent per-query reference (empty = clean). A
/// non-default `sabotage` hits the engines under test (never the
/// reference), which a correct harness must report as mismatches.
pub fn check_multi_case(case: &MultiCase, sabotage: Sabotage) -> Vec<Mismatch> {
    let mut mismatches = Vec::new();
    let registry = sim_registry();
    let honest = engine_config_from(&case.config, Sabotage::default());
    let sut = engine_config_from(&case.config, sabotage);
    let items = case.stream(&registry);

    let queries: Vec<Arc<Query>> = match case
        .queries
        .iter()
        .map(|p| p.build(&registry))
        .collect::<Result<_, _>>()
    {
        Ok(qs) => qs,
        Err(e) => {
            mismatches.push(Mismatch {
                path: Path::SharedPlan,
                detail: format!("builder rejected a generated query: {e}"),
            });
            return mismatches;
        }
    };
    let nq = queries.len();

    // the reference: each query alone on an independent single-threaded
    // engine with the honest configuration and its own policy
    let mut reference: Vec<Vec<OutputItem>> = Vec::with_capacity(nq);
    for (qx, q) in queries.iter().enumerate() {
        let cfg = EngineConfig {
            policy: case.policies[qx],
            ..honest
        };
        let mut eng = NativeEngine::new(Arc::clone(q), cfg);
        let mut out = Vec::new();
        for it in &items {
            out.extend(eng.ingest(it));
        }
        out.extend(eng.finish());
        reference.push(out);
    }
    let ref_reprs: Vec<Vec<_>> = reference
        .iter()
        .map(|o| o.iter().map(repr).collect())
        .collect();

    let compare_exact = |mismatches: &mut Vec<Mismatch>, path: Path, per: &[Vec<OutputItem>]| {
        for (qx, got) in per.iter().enumerate() {
            let r: Vec<_> = got.iter().map(repr).collect();
            if r != ref_reprs[qx] {
                mismatches.push(Mismatch {
                    path,
                    detail: format!(
                        "query {qx} (`{}`, {:?}): {}",
                        case.queries[qx].text(),
                        case.policies[qx],
                        first_diff(&ref_reprs[qx], &r)
                    ),
                });
            }
        }
    };

    let register_shared = |shared: &mut SharedMultiEngine| {
        for (qx, q) in queries.iter().enumerate() {
            shared.register_with_policy(Arc::clone(q), case.policies[qx]);
        }
    };

    // shared plan, item by item: identical per-query output
    {
        let mut shared = SharedMultiEngine::new(sut);
        register_shared(&mut shared);
        let mut out = Vec::new();
        for it in &items {
            out.extend(shared.ingest(it));
        }
        out.extend(shared.finish());
        let per = split_outputs(nq, out);
        compare_exact(&mut mismatches, Path::SharedPlan, &per);
    }

    // shared plan, batched ingestion: identical per-query output
    {
        let mut shared = SharedMultiEngine::new(sut);
        register_shared(&mut shared);
        let mut out = Vec::new();
        for chunk in items.chunks(case.config.batch.max(1)) {
            out.extend(shared.ingest_batch(chunk).into_iter().flatten());
        }
        out.extend(shared.finish());
        let per = split_outputs(nq, out);
        compare_exact(&mut mismatches, Path::SharedBatched, &per);
    }

    // subscribe order == query order, so QueryId indexes line up with
    // the reference (the generated texts are distinct by construction);
    // each subscription carries its query's policy request
    let texts: Vec<String> = case.queries.iter().map(|p| p.text()).collect();
    let subscribe_all = |core: &mut EngineCore| -> Result<(), String> {
        for (qx, t) in texts.iter().enumerate() {
            let (_, effective) = core
                .subscribe_with_policy(t, Some(case.policies[qx]))
                .map_err(|e| format!("`{t}`: {e}"))?;
            if effective != case.policies[qx] {
                return Err(format!(
                    "`{t}`: negotiated {effective:?}, requested {:?}",
                    case.policies[qx]
                ));
            }
        }
        Ok(())
    };

    // durable shared-plan core, crash mid-stream, resumed as an
    // independent *sharded* core: exactly-once deliveries per query
    // across the backend switch (policies ride the checkpoint envelope)
    {
        let mut core_cfg = CoreConfig::new(Arc::clone(&registry), Strategy::Native, sut);
        core_cfg.checkpoint_every = Some(case.config.ckpt_every.max(1));
        let mut core = EngineCore::new(core_cfg.clone());
        match subscribe_all(&mut core) {
            Err(e) => mismatches.push(Mismatch {
                path: Path::SharedCrashResume,
                detail: format!("subscribe rejected {e}"),
            }),
            Ok(()) => {
                let crash_at = (case.config.crash_at as usize).min(items.len());
                let mut delivered = Vec::new();
                for it in &items[..crash_at] {
                    delivered.extend(core.ingest(it));
                }
                let saved = core.store().clone();
                drop(core); // crash: only the persisted store survives
                let mut resumed_cfg = core_cfg;
                resumed_cfg.shared_plan = false;
                resumed_cfg.shards = 2;
                let (mut core, replay_from) = EngineCore::resume(resumed_cfg, saved);
                for (qx, (text, want)) in texts.iter().zip(&case.policies).enumerate() {
                    let restored = core.query_policy(QueryId::from_index(qx));
                    if restored != *want {
                        mismatches.push(Mismatch {
                            path: Path::SharedCrashResume,
                            detail: format!(
                                "query {qx} (`{text}`): policy {restored:?} after resume, \
                                 subscribed {want:?}"
                            ),
                        });
                    }
                }
                for it in &items[(replay_from as usize).min(items.len())..] {
                    delivered.extend(core.ingest(it));
                }
                delivered.extend(core.finish());
                let per = split_outputs(nq, delivered);
                for qx in 0..nq {
                    if delivery_multiset(&per[qx]) != delivery_multiset(&reference[qx]) {
                        mismatches.push(Mismatch {
                            path: Path::SharedCrashResume,
                            detail: format!(
                                "query {qx} (`{}`, {:?}): {} deliveries vs {} reference \
                                 (crash at item {crash_at}, resumed from {replay_from})",
                                texts[qx],
                                case.policies[qx],
                                per[qx].len(),
                                reference[qx].len()
                            ),
                        });
                    }
                }
            }
        }
    }

    // independent sharded core over the same query set: identical
    // per-query output (ties both server backends to the reference)
    {
        let mut two = CoreConfig::new(Arc::clone(&registry), Strategy::Native, sut);
        two.shards = 2;
        let mut core = EngineCore::new(two);
        match subscribe_all(&mut core) {
            Err(e) => mismatches.push(Mismatch {
                path: Path::SharedSharded(2),
                detail: format!("subscribe rejected {e}"),
            }),
            Ok(()) => {
                let mut out = Vec::new();
                for it in &items {
                    out.extend(core.ingest(it));
                }
                out.extend(core.finish());
                let per = split_outputs(nq, out);
                compare_exact(&mut mismatches, Path::SharedSharded(2), &per);
            }
        }
    }

    // networked loopback with the full query set, each query requesting
    // its policy at SUBSCRIBE time: byte-identical frames (verified
    // inside loopback_run_with_policies); gated per case — it boots a
    // real TCP server
    if case.config.loopback {
        let mut core = CoreConfig::new(Arc::clone(&registry), Strategy::Native, sut);
        core.shards = case.config.loopback_shards;
        let pairs: Vec<(String, Option<DisorderPolicy>)> = texts
            .iter()
            .zip(&case.policies)
            .map(|(t, &p)| (t.clone(), Some(p)))
            .collect();
        if let Err(e) = loopback_run_with_policies(core, &pairs, &items, case.config.batch) {
            mismatches.push(Mismatch {
                path: Path::SharedLoopback,
                detail: e,
            });
        }
    }

    mismatches
}

/// One failing multi-query case (reported unshrunk; the replay pair
/// regenerates it exactly).
#[derive(Debug, Clone)]
pub struct MultiFailure {
    /// Base seed of the failing case.
    pub seed: u64,
    /// Case index under that seed (replay: `--multi --seed S --case N`).
    pub case_ix: u64,
    /// All path disagreements of the case.
    pub mismatches: Vec<Mismatch>,
    /// One-line description of the case.
    pub summary: String,
}

/// Outcome of a multi-query simulation run.
#[derive(Debug, Clone, Default)]
pub struct MultiReport {
    /// Cases generated and checked.
    pub cases_run: u64,
    /// Cases in which at least one shared-plan path disagreed.
    pub failures: Vec<MultiFailure>,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// The run stopped early on its time budget.
    pub budget_exhausted: bool,
    /// The run stopped early on `max_failures`.
    pub failure_capped: bool,
}

impl MultiReport {
    /// `true` when every checked case agreed on every path.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Generates the multi-query case for `(seed, case_ix)` with run
/// options applied. A `--policy` pin overrides every query's drawn
/// policy (and the server default), so pinned sweeps stay meaningful in
/// multi mode.
pub fn materialize_multi(seed: u64, case_ix: u64, opts: &SimOptions) -> MultiCase {
    let mut case = MultiCase::generate(seed, case_ix);
    if opts.no_loopback {
        case.config.loopback = false;
    }
    if let Some(policy) = opts.policy {
        case.config.policy = policy;
        for p in &mut case.policies {
            *p = policy;
        }
    }
    case
}

/// Checks one multi-query `(seed, case)` pair. Returns `None` when the
/// case is clean.
pub fn replay_multi(seed: u64, case_ix: u64, opts: &SimOptions) -> Option<MultiFailure> {
    let case = materialize_multi(seed, case_ix, opts);
    let mismatches = check_multi_case(&case, opts.sabotage());
    if mismatches.is_empty() {
        return None;
    }
    Some(MultiFailure {
        seed,
        case_ix,
        summary: describe_multi(&case),
        mismatches,
    })
}

/// One-line description of a multi-query case.
pub fn describe_multi(case: &MultiCase) -> String {
    let texts: Vec<String> = case
        .queries
        .iter()
        .zip(&case.policies)
        .map(|(q, p)| format!("{} [{p:?}]", q.text()))
        .collect();
    format!(
        "{} queries [{}], {} items, K={}",
        case.queries.len(),
        texts.join(" ; "),
        case.items.len(),
        case.config.k,
    )
}

/// Runs the full multi-query matrix described by `opts`, reporting
/// progress through `progress`.
pub fn run_multi(opts: &SimOptions, mut progress: impl FnMut(&str)) -> MultiReport {
    let start = Instant::now();
    let mut report = MultiReport::default();
    'outer: for &seed in &opts.seeds {
        for case_ix in 0..opts.cases_per_seed {
            if let Some(budget) = opts.time_budget {
                if start.elapsed() > budget {
                    report.budget_exhausted = true;
                    progress(&format!(
                        "time budget exhausted after {} cases",
                        report.cases_run
                    ));
                    break 'outer;
                }
            }
            report.cases_run += 1;
            if let Some(failure) = replay_multi(seed, case_ix, opts) {
                progress(&format!(
                    "MISMATCH seed={seed} case={case_ix}: {} ({})",
                    failure
                        .mismatches
                        .iter()
                        .map(|m| m.path.to_string())
                        .collect::<Vec<_>>()
                        .join(", "),
                    failure.summary
                ));
                report.failures.push(failure);
                if report.failures.len() >= opts.max_failures {
                    report.failure_capped = true;
                    progress("failure cap reached; stopping early");
                    break 'outer;
                }
            }
        }
    }
    report.elapsed = start.elapsed();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for case_ix in 0..10 {
            assert_eq!(
                MultiCase::generate(5, case_ix),
                MultiCase::generate(5, case_ix)
            );
        }
        assert_ne!(MultiCase::generate(5, 0), MultiCase::generate(5, 1));
    }

    #[test]
    fn query_sets_are_textually_distinct() {
        for case_ix in 0..40 {
            let case = MultiCase::generate(9, case_ix);
            assert!(case.queries.len() >= 2, "case {case_ix} degenerated");
            assert_eq!(case.policies.len(), case.queries.len());
            let texts: std::collections::BTreeSet<String> =
                case.queries.iter().map(|q| q.text()).collect();
            assert_eq!(
                texts.len(),
                case.queries.len(),
                "duplicate text in case {case_ix}"
            );
        }
    }

    #[test]
    fn generated_sets_mix_disorder_policies() {
        // per-query draws must actually produce mixed-policy sets (the
        // point of the multi-mode policy axis); a handful of cases with
        // at least two distinct policies in one set is enough evidence
        let mut mixed = 0u32;
        for case_ix in 0..40 {
            let case = MultiCase::generate(9, case_ix);
            let distinct: std::collections::BTreeSet<String> =
                case.policies.iter().map(|p| format!("{p:?}")).collect();
            if distinct.len() >= 2 {
                mixed += 1;
            }
        }
        assert!(mixed >= 10, "only {mixed}/40 cases mixed policies");
    }

    #[test]
    fn generated_sets_actually_form_prefix_groups() {
        // sibling derivation must produce query sets the shared plan can
        // pool — otherwise this mode tests nothing the single-query
        // mode doesn't
        let registry = sim_registry();
        let mut grouped = 0u32;
        for case_ix in 0..30 {
            let case = MultiCase::generate(3, case_ix);
            let mut shared =
                SharedMultiEngine::new(engine_config_from(&case.config, Sabotage::default()));
            for p in &case.queries {
                shared.register(p.build(&registry).expect("generated queries are valid"));
            }
            if shared.plan_metrics().prefix_groups >= 1 {
                grouped += 1;
            }
        }
        assert!(
            grouped >= 5,
            "only {grouped}/30 cases formed a prefix group"
        );
    }

    #[test]
    fn multi_cases_are_clean() {
        let opts = SimOptions {
            seeds: vec![41],
            cases_per_seed: 25,
            no_loopback: true, // debug-mode: CI covers TCP in release
            ..SimOptions::default()
        };
        let report = run_multi(&opts, |_| {});
        assert_eq!(report.cases_run, 25);
        assert!(
            report.clean(),
            "shared-plan mismatches: {:?}",
            report
                .failures
                .iter()
                .map(|f| (f.seed, f.case_ix, &f.mismatches))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn purge_sabotage_is_detected_in_multi_mode() {
        // the honesty check: a skewed purge horizon hits the engines
        // under test but never the reference, so mismatches must surface
        let opts = SimOptions {
            seeds: vec![1, 2],
            cases_per_seed: 60,
            purge_skew: 2,
            no_loopback: true,
            max_failures: 1,
            ..SimOptions::default()
        };
        let report = run_multi(&opts, |_| {});
        assert!(
            !report.failures.is_empty(),
            "a skewed purge horizon went undetected across {} multi-query cases",
            report.cases_run
        );
        let f = &report.failures[0];
        // replayable: the same (seed, case) pair reproduces the failure
        let again = replay_multi(f.seed, f.case_ix, &opts).expect("replay reproduces");
        assert_eq!(again.mismatches.len(), f.mismatches.len());
        // ... and the honest engine passes the same case
        assert!(check_multi_case(
            &materialize_multi(f.seed, f.case_ix, &opts),
            Sabotage::default()
        )
        .is_empty());
    }

    #[test]
    fn retraction_drop_sabotage_is_detected_in_multi_mode() {
        // the speculative mirror of the purge honesty check: silently
        // swallowing one retraction in the engines under test (never
        // the reference) must surface as a mismatch
        let opts = SimOptions {
            seeds: vec![1, 2],
            cases_per_seed: 60,
            retraction_drop: 1,
            policy: Some(DisorderPolicy::Speculative),
            no_loopback: true,
            max_failures: 1,
            ..SimOptions::default()
        };
        let report = run_multi(&opts, |_| {});
        assert!(
            !report.failures.is_empty(),
            "a dropped retraction went undetected across {} multi-query cases",
            report.cases_run
        );
        let f = &report.failures[0];
        // replayable, and the honest engine passes the same case
        assert!(replay_multi(f.seed, f.case_ix, &opts).is_some());
        assert!(check_multi_case(
            &materialize_multi(f.seed, f.case_ix, &opts),
            Sabotage::default()
        )
        .is_empty());
    }
}
