//! The simulation driver: iterates `(seed, case)` pairs under a time
//! budget, checks each generated case across every production path, and
//! shrinks + renders any failure into a replayable repro.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use sequin_obs::Bundle;

use crate::case::{CaseData, DisorderPolicy};
use crate::diff::{check_case_sharded, Mismatch, Sabotage};
use crate::postmortem::{bundle_filename, capture_bundle, write_bundle};
use crate::repro::emit_test;
use crate::shrink::{describe, shrink};

/// Knobs for one simulation run.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Base seeds; each contributes `cases_per_seed` cases.
    pub seeds: Vec<u64>,
    /// Cases generated per seed.
    pub cases_per_seed: u64,
    /// Wall-clock budget; the run stops early (cleanly) when exceeded.
    pub time_budget: Option<Duration>,
    /// Minimize failing cases before reporting them.
    pub shrink: bool,
    /// Fault injection: widen every purge threshold by this many ticks.
    /// Non-zero values sabotage the engines under test (never the
    /// oracle); a healthy harness must then report mismatches.
    pub purge_skew: u64,
    /// Fault injection: silently drop this many speculative retractions
    /// in every engine under test (never the oracle or the reference);
    /// a healthy harness must then report mismatches.
    pub retraction_drop: u64,
    /// Pin every case to one [`DisorderPolicy`] (the `--policy` knob);
    /// `None` lets each case draw its own (the `--policy all` sweep).
    pub policy: Option<DisorderPolicy>,
    /// Skip the networked loopback path (debug builds, sandboxes
    /// without TCP).
    pub no_loopback: bool,
    /// Stop after this many failures (shrinking is expensive).
    pub max_failures: usize,
    /// Worker counts the routed-sharded paths run at (the `--shards`
    /// knob); the sharded crash+resume path checkpoints at the first and
    /// resumes at the last.
    pub shard_counts: Vec<usize>,
    /// Flight recorder: write each failure's postmortem bundle under
    /// this directory (`--bundle-dir`). `None` still captures bundles
    /// in-memory (they ride on [`Failure`]) but writes nothing.
    pub bundle_dir: Option<PathBuf>,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            seeds: vec![0xC0FFEE],
            cases_per_seed: 100,
            time_budget: None,
            shrink: true,
            purge_skew: 0,
            retraction_drop: 0,
            policy: None,
            no_loopback: false,
            max_failures: 3,
            shard_counts: crate::diff::DEFAULT_SHARD_COUNTS.to_vec(),
            bundle_dir: None,
        }
    }
}

impl SimOptions {
    /// The fixed per-PR CI preset: four pinned seeds, 560 cases, an
    /// ~80 second ceiling well under the job timeout.
    pub fn ci() -> Self {
        SimOptions {
            seeds: vec![1, 2, 3, 4],
            cases_per_seed: 140,
            time_budget: Some(Duration::from_secs(80)),
            ..SimOptions::default()
        }
    }

    /// The fault-injection knobs as one [`Sabotage`] bundle.
    pub fn sabotage(&self) -> Sabotage {
        Sabotage {
            purge_skew: self.purge_skew,
            retraction_drop: self.retraction_drop,
        }
    }
}

/// One failing case, shrunk and rendered.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Base seed of the failing case.
    pub seed: u64,
    /// Case index under that seed (replay: `--seed S --case N`).
    pub case_ix: u64,
    /// Mismatches of the *original* generated case.
    pub original: Vec<Mismatch>,
    /// The minimized still-failing case.
    pub shrunk: CaseData,
    /// Mismatches of the minimized case.
    pub mismatches: Vec<Mismatch>,
    /// One-line description of the minimized case.
    pub summary: String,
    /// Self-contained `#[test]` snippet reproducing the failure.
    pub repro: String,
    /// Flight-recorder capture of the *original* failing case: lineage,
    /// metrics, config, and replay parameters
    /// ([`crate::postmortem::replay_bundle`] re-derives the mismatch from
    /// it alone).
    pub bundle: Bundle,
}

/// Outcome of a simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// Cases generated and checked.
    pub cases_run: u64,
    /// Cases in which at least one production path disagreed.
    pub failures: Vec<Failure>,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// The run stopped early on its time budget.
    pub budget_exhausted: bool,
    /// The run stopped early on `max_failures`.
    pub failure_capped: bool,
}

impl SimReport {
    /// `true` when every checked case agreed on every path.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Generates the case for `(seed, case_ix)` with run options applied.
pub fn materialize(seed: u64, case_ix: u64, opts: &SimOptions) -> CaseData {
    let mut case = CaseData::generate(seed, case_ix);
    if opts.no_loopback {
        case.config.loopback = false;
    }
    if let Some(policy) = opts.policy {
        case.config.policy = policy;
    }
    case
}

/// Checks one `(seed, case)` pair and, on failure, shrinks and renders
/// it. Returns `None` when the case is clean.
pub fn replay(seed: u64, case_ix: u64, opts: &SimOptions) -> Option<Failure> {
    let case = materialize(seed, case_ix, opts);
    let original = check_case_sharded(&case, opts.sabotage(), &opts.shard_counts);
    if original.is_empty() {
        return None;
    }
    let (shrunk, mismatches) = if opts.shrink {
        let s = shrink(&case, opts.sabotage(), &opts.shard_counts);
        (s.case, s.mismatches)
    } else {
        (case, original.clone())
    };
    let name = format!("sim_seed_{seed}_case_{case_ix}");
    let repro = emit_test(&name, seed, case_ix, &shrunk, &mismatches);
    let bundle = capture_bundle(seed, case_ix, opts, &original);
    Some(Failure {
        seed,
        case_ix,
        original,
        summary: describe(&shrunk),
        shrunk,
        mismatches,
        repro,
        bundle,
    })
}

/// Runs the full matrix described by `opts`, reporting progress through
/// `progress` (one line per event worth narrating).
pub fn run(opts: &SimOptions, mut progress: impl FnMut(&str)) -> SimReport {
    let start = Instant::now();
    let mut report = SimReport::default();
    'outer: for &seed in &opts.seeds {
        for case_ix in 0..opts.cases_per_seed {
            if let Some(budget) = opts.time_budget {
                if start.elapsed() > budget {
                    report.budget_exhausted = true;
                    progress(&format!(
                        "time budget exhausted after {} cases",
                        report.cases_run
                    ));
                    break 'outer;
                }
            }
            report.cases_run += 1;
            if let Some(failure) = replay(seed, case_ix, opts) {
                progress(&format!(
                    "MISMATCH seed={seed} case={case_ix}: {} (shrunk to: {})",
                    failure
                        .original
                        .iter()
                        .map(|m| m.path.to_string())
                        .collect::<Vec<_>>()
                        .join(", "),
                    failure.summary
                ));
                if let Some(dir) = &opts.bundle_dir {
                    match write_bundle(dir, &bundle_filename(seed, case_ix), &failure.bundle) {
                        Ok(path) => progress(&format!("bundle written: {}", path.display())),
                        Err(e) => progress(&format!("bundle write failed: {e}")),
                    }
                }
                report.failures.push(failure);
                if report.failures.len() >= opts.max_failures {
                    report.failure_capped = true;
                    progress("failure cap reached; stopping early");
                    break 'outer;
                }
            }
        }
    }
    report.elapsed = start.elapsed();
    report
}
