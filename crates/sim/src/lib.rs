//! Deterministic differential simulation harness for sequin.
//!
//! One `u64` seed drives everything: a random-but-valid SEQ query (built
//! through [`sequin_query::QueryBuilder`] *and* re-parsed from text), an event
//! stream with a parameterized disorder schedule (lateness, duplicates,
//! reversed bursts, punctuation placement), and an engine configuration.
//! Each case is evaluated on a naive `O(n^k)` reference oracle and then
//! differentially on every production path — single-shard, sharded
//! pools, batched ingestion, crash-at-checkpoint + resume, and the
//! networked server loopback — asserting identical output.
//!
//! On mismatch the case is shrunk to a minimal repro and rendered as a
//! self-contained `#[test]` snippet plus a replayable `--seed`/`--case`
//! pair. The `sequin sim` CLI subcommand fronts this crate for both CI
//! and interactive debugging.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod case;
pub mod diff;
pub mod multi;
pub mod oracle;
pub mod postmortem;
pub mod repro;
pub mod runner;
pub mod shrink;

pub use case::{CaseConfig, CaseData, QueryPlan, SimEvent, SimItem};
pub use diff::{check_case, check_case_sharded, Mismatch, Path, Sabotage, DEFAULT_SHARD_COUNTS};
pub use multi::{
    check_multi_case, materialize_multi, replay_multi, run_multi, MultiCase, MultiFailure,
    MultiReport,
};
pub use oracle::reference_matches;
pub use postmortem::{capture_bundle, read_bundle, replay_bundle, write_bundle};
pub use runner::{replay, run, Failure, SimOptions, SimReport};
pub use shrink::{shrink, Shrunk};
