//! The naive reference oracle.
//!
//! Implements the SEQ semantics *directly from the definition*: enumerate
//! every assignment of distinct events to the positive components
//! (strictly increasing occurrence timestamps), then check the window,
//! the `WHERE` predicates, and every negation region against the complete
//! sorted event history. `O(n^k)` in pattern length `k` — obviously
//! correct, no stacks, no watermarks, no purge. Any disagreement with a
//! production engine is a real bug in one of the two.

use std::collections::BTreeSet;
use std::sync::Arc;

use sequin_query::Query;
use sequin_runtime::{regions, Region};
use sequin_types::EventRef;

/// A match identity: event ids in positive-component order.
pub type MatchIds = Vec<u64>;

/// Enumerates the exact match set of `query` over `events` (which must be
/// duplicate-free; order does not matter). Exponential in pattern length —
/// keep inputs small.
pub fn reference_matches(query: &Query, events: &[EventRef]) -> BTreeSet<MatchIds> {
    let m = query.positive_len();
    let mut out = BTreeSet::new();
    let mut chosen: Vec<Option<EventRef>> = vec![None; m];
    recurse(query, events, 0, &mut chosen, &mut out);
    out
}

fn recurse(
    query: &Query,
    events: &[EventRef],
    slot: usize,
    chosen: &mut Vec<Option<EventRef>>,
    out: &mut BTreeSet<MatchIds>,
) {
    let m = query.positive_len();
    if slot == m {
        let bound: Vec<EventRef> = chosen
            .iter()
            .map(|c| Arc::clone(c.as_ref().expect("full assignment")))
            .collect();
        if accepts(query, &bound, events) {
            out.insert(bound.iter().map(|e| e.id().get()).collect());
        }
        return;
    }
    let want = query.positive_types(slot);
    for ev in events {
        if !want.contains(&ev.event_type()) {
            continue;
        }
        if let Some(prev) = chosen[..slot].iter().rev().flatten().next() {
            if ev.ts() <= prev.ts() {
                continue;
            }
        }
        chosen[slot] = Some(Arc::clone(ev));
        recurse(query, events, slot + 1, chosen, out);
        chosen[slot] = None;
    }
}

/// Checks window, predicates, and negation against the complete history.
fn accepts(query: &Query, bound: &[EventRef], events: &[EventRef]) -> bool {
    let first = bound.first().expect("nonempty").ts();
    let last = bound.last().expect("nonempty").ts();
    if last - first > query.window() {
        return false;
    }
    let binding = query.binding_from_positives(bound);
    if !query
        .predicates()
        .iter()
        .all(|p| p.eval(&binding) == Some(true))
    {
        return false;
    }
    let regions: Vec<Region> = regions(query, bound);
    for (ix, neg) in query.negations().iter().enumerate() {
        let region = regions[ix];
        if region.is_empty() {
            continue;
        }
        for candidate in events {
            if !neg.matches_type(candidate.event_type())
                || candidate.ts() < region.start
                || candidate.ts() >= region.end
            {
                continue;
            }
            let mut b = query.binding_from_positives(bound);
            b[neg.comp] = Some(candidate);
            if neg.predicates.iter().all(|p| p.eval(&b) == Some(true)) {
                return false;
            }
        }
    }
    true
}
