//! The sim flight recorder.
//!
//! When a differential case mismatches, [`capture_bundle`] re-drives the
//! canonical path through an observability-enabled
//! [`sequin_server::EngineCore`] and freezes everything a postmortem
//! needs into one self-contained [`Bundle`]: the causal lineage of every
//! output the case produced, a metrics snapshot, the configuration under
//! test, and the exact replay parameters (seed, case index, sabotage
//! knobs, policy pin, shard counts). [`replay_bundle`] proves a bundle is
//! live by reconstructing the run options from those parameters and
//! re-checking the case — a healthy bundle replays to the same mismatch
//! with no access to the original process.
//!
//! Bundles render through `sequin trace --bundle <path>`.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use sequin_engine::{DisorderPolicy, Strategy};
use sequin_obs::{Bundle, ObsConfig};
use sequin_server::{CoreConfig, EngineCore};

use crate::case::sim_registry;
use crate::diff::{check_case_sharded, engine_config, Mismatch};
use crate::runner::{materialize, SimOptions};

/// Encodes an optional policy pin into one replay parameter. `u64::MAX`
/// is "no pin" (each case draws its own policy); adaptive pins carry the
/// accuracy knob in the low byte under bit 8.
fn policy_code(policy: Option<DisorderPolicy>) -> u64 {
    match policy {
        None => u64::MAX,
        Some(DisorderPolicy::Conservative) => 0,
        Some(DisorderPolicy::Speculative) => 1,
        Some(DisorderPolicy::Lazy) => 2,
        Some(DisorderPolicy::AdaptiveSlack { accuracy }) => 0x100 | accuracy as u64,
    }
}

fn policy_from_code(code: u64) -> Option<DisorderPolicy> {
    match code {
        0 => Some(DisorderPolicy::Conservative),
        1 => Some(DisorderPolicy::Speculative),
        2 => Some(DisorderPolicy::Lazy),
        c if c != u64::MAX && c & 0x100 != 0 => Some(DisorderPolicy::AdaptiveSlack {
            accuracy: (c & 0xFF) as u8,
        }),
        _ => None,
    }
}

/// Captures a postmortem bundle for a mismatching `(seed, case)` pair.
///
/// The case is re-driven through the canonical path (Native strategy,
/// one shard) with provenance tracing on and a ring large enough to hold
/// every output span, so the bundle's lineage covers the whole run, not
/// just its tail. The sabotage knobs from `opts` are applied exactly as
/// the differential check applied them — the bundle records the *failing*
/// configuration, not a cleaned-up one.
pub fn capture_bundle(
    seed: u64,
    case_ix: u64,
    opts: &SimOptions,
    mismatches: &[Mismatch],
) -> Bundle {
    let case = materialize(seed, case_ix, opts);
    let registry = sim_registry();
    let mut core_cfg = CoreConfig::new(
        Arc::clone(&registry),
        Strategy::Native,
        engine_config(&case, opts.sabotage()),
    );
    core_cfg.obs = ObsConfig {
        trace_capacity: 4096,
        ..ObsConfig::default()
    };
    let mut core = EngineCore::new(core_cfg);
    let text = case.query.text();
    if core
        .subscribe_with_policy(&text, Some(case.config.policy))
        .is_ok()
    {
        let items = case.stream(&registry);
        for item in &items {
            core.ingest(item);
        }
        core.finish();
    }
    let mut params = vec![
        ("seed".to_owned(), seed),
        ("case".to_owned(), case_ix),
        ("purge_skew".to_owned(), opts.purge_skew),
        ("retraction_drop".to_owned(), opts.retraction_drop),
        ("policy".to_owned(), policy_code(opts.policy)),
        ("no_loopback".to_owned(), opts.no_loopback as u64),
        ("mismatch_count".to_owned(), mismatches.len() as u64),
    ];
    for (i, &n) in opts.shard_counts.iter().enumerate() {
        params.push((format!("shard_count_{i}"), n as u64));
    }
    let mut bundle = core.postmortem_bundle("sim-mismatch", params);
    if !bundle.config.is_empty() && !bundle.config.ends_with('\n') {
        bundle.config.push('\n');
    }
    for m in mismatches {
        bundle
            .config
            .push_str(&format!("mismatch {}: {}\n", m.path, m.detail));
    }
    bundle
}

/// Replays a captured bundle: reconstructs the run options from its
/// parameters, regenerates the case, and re-runs the full differential
/// check. Returns `None` when the bundle lacks replay parameters (it was
/// not captured by the sim recorder); otherwise the mismatches observed —
/// for a healthy bundle, the same paths that failed at capture time.
pub fn replay_bundle(bundle: &Bundle) -> Option<Vec<Mismatch>> {
    let seed = bundle.param("seed")?;
    let case_ix = bundle.param("case")?;
    let mut shard_counts = Vec::new();
    while let Some(n) = bundle.param(&format!("shard_count_{}", shard_counts.len())) {
        shard_counts.push((n as usize).max(1));
    }
    if shard_counts.is_empty() {
        shard_counts = crate::diff::DEFAULT_SHARD_COUNTS.to_vec();
    }
    let opts = SimOptions {
        seeds: vec![seed],
        cases_per_seed: case_ix + 1,
        shrink: false,
        purge_skew: bundle.param("purge_skew").unwrap_or(0),
        retraction_drop: bundle.param("retraction_drop").unwrap_or(0),
        policy: policy_from_code(bundle.param("policy").unwrap_or(u64::MAX)),
        no_loopback: bundle.param("no_loopback").unwrap_or(0) != 0,
        shard_counts,
        ..SimOptions::default()
    };
    let case = materialize(seed, case_ix, &opts);
    Some(check_case_sharded(
        &case,
        opts.sabotage(),
        &opts.shard_counts,
    ))
}

/// The on-disk name for a mismatch bundle.
pub fn bundle_filename(seed: u64, case_ix: u64) -> String {
    format!("sim-mismatch-seed{seed}-case{case_ix}.sqpm")
}

/// Writes an encoded bundle under `dir` (created if absent); returns the
/// full path.
pub fn write_bundle(dir: &Path, name: &str, bundle: &Bundle) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    std::fs::write(&path, bundle.encode())?;
    Ok(path)
}

/// Reads and decodes a bundle from disk.
pub fn read_bundle(path: &Path) -> io::Result<Bundle> {
    let bytes = std::fs::read(path)?;
    Bundle::decode(&bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_codes_round_trip() {
        for policy in [
            None,
            Some(DisorderPolicy::Conservative),
            Some(DisorderPolicy::Speculative),
            Some(DisorderPolicy::Lazy),
            Some(DisorderPolicy::AdaptiveSlack { accuracy: 0 }),
            Some(DisorderPolicy::AdaptiveSlack { accuracy: 97 }),
        ] {
            assert_eq!(policy_from_code(policy_code(policy)), policy);
        }
    }

    #[test]
    fn clean_case_bundle_replays_clean() {
        // An honest case mismatches nowhere; its bundle replays to the
        // same (empty) verdict, exercising the whole capture → encode →
        // decode → replay loop.
        let opts = SimOptions {
            no_loopback: true,
            ..SimOptions::default()
        };
        let bundle = capture_bundle(0xC0FFEE, 0, &opts, &[]);
        assert_eq!(bundle.reason, "sim-mismatch");
        assert_eq!(bundle.param("seed"), Some(0xC0FFEE));
        let decoded = Bundle::decode(&bundle.encode()).expect("round trip");
        assert_eq!(decoded, bundle);
        assert_eq!(replay_bundle(&decoded), Some(Vec::new()));
    }

    #[test]
    fn sabotaged_bundle_replays_to_the_same_mismatch() {
        // Inject a fault, find a case it breaks, and check its bundle
        // reproduces the same mismatching paths from the decoded bytes
        // alone.
        let opts = SimOptions {
            purge_skew: 40,
            no_loopback: true,
            shrink: false,
            ..SimOptions::default()
        };
        let mut found = None;
        for case_ix in 0..60 {
            let case = materialize(0xC0FFEE, case_ix, &opts);
            let mismatches = check_case_sharded(&case, opts.sabotage(), &opts.shard_counts);
            if !mismatches.is_empty() {
                found = Some((case_ix, mismatches));
                break;
            }
        }
        let (case_ix, mismatches) = found.expect("purge sabotage must break some case");
        let bundle = capture_bundle(0xC0FFEE, case_ix, &opts, &mismatches);
        let decoded = Bundle::decode(&bundle.encode()).expect("round trip");
        let replayed = replay_bundle(&decoded).expect("sim bundle has replay params");
        assert_eq!(replayed, mismatches);
        assert!(decoded.config.contains("mismatch"));
    }
}
