//! Differential execution of one case across every production path.
//!
//! The canonical run is the single-threaded [`NativeEngine`] fed one item
//! at a time. It is checked against the naive oracle (exact match set),
//! and every other production path is checked against *it*:
//!
//! * routed sharded pools (2 and 7 workers by default; pinnable via
//!   [`check_case_sharded`]) — output must be **identical**, including
//!   kinds, order, and emission bookkeeping;
//! * batched ingestion — identical output;
//! * crash at the configured point + checkpoint resume — the union of
//!   pre- and post-crash deliveries must equal the canonical output
//!   exactly once (as a multiset of `(kind, ids)`);
//! * sharded crash + resume **with a shard-count change** — a pool of
//!   `from` workers writes the checkpoints and a pool of `to` workers
//!   resumes them, exercising the shard-count-agnostic snapshot
//!   guarantee end to end;
//! * the networked server loopback — byte-identical frames, verified by
//!   [`sequin_server::loopback_run`] itself.
//!
//! The builder and parser front ends are also cross-checked: the same
//! plan rendered both ways must produce equal [`sequin_query::Query`]
//! values.

use std::collections::BTreeSet;
use std::sync::Arc;

use sequin_engine::{
    make_engine, CheckpointPolicy, Checkpointer, Engine, EngineConfig, NativeEngine, OutputItem,
    OutputKind, ShardedEngine, Strategy, WatermarkSource,
};
use sequin_query::parse;
use sequin_server::{loopback_run, CoreConfig};
use sequin_types::{Duration, StreamItem};

use crate::case::{sim_registry, CaseData};
use crate::oracle::reference_matches;

/// Which production path disagreed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Path {
    /// Builder-built query != parser-built query.
    BuilderParser,
    /// Canonical engine output != naive oracle match set.
    Oracle,
    /// Sharded pool (worker count) output != canonical output.
    Sharded(usize),
    /// Batched ingestion output != canonical output.
    Batched,
    /// Crash + resume deliveries != canonical output (exactly-once).
    CrashResume,
    /// Sharded crash + resume with a shard-count change (`from` → `to`
    /// workers) != canonical output (exactly-once).
    ShardedResume(usize, usize),
    /// Networked loopback frames != in-process frames.
    Loopback,
    /// Shared-plan evaluation != independent per-query evaluation.
    SharedPlan,
    /// Shared-plan batched ingestion != independent evaluation.
    SharedBatched,
    /// Shared-plan durable crash + resume != independent evaluation
    /// (exactly-once, including a backend switch on restart).
    SharedCrashResume,
    /// Sharded independent evaluation (worker count) != shared-plan
    /// evaluation of the same query set.
    SharedSharded(usize),
    /// Multi-query networked loopback != its in-process oracle.
    SharedLoopback,
}

impl std::fmt::Display for Path {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Path::BuilderParser => write!(f, "builder-vs-parser"),
            Path::Oracle => write!(f, "oracle"),
            Path::Sharded(n) => write!(f, "sharded({n})"),
            Path::Batched => write!(f, "batched"),
            Path::CrashResume => write!(f, "crash-resume"),
            Path::ShardedResume(a, b) => write!(f, "sharded-resume({a}->{b})"),
            Path::Loopback => write!(f, "loopback"),
            Path::SharedPlan => write!(f, "shared-plan"),
            Path::SharedBatched => write!(f, "shared-batched"),
            Path::SharedCrashResume => write!(f, "shared-crash-resume"),
            Path::SharedSharded(n) => write!(f, "shared-vs-sharded({n})"),
            Path::SharedLoopback => write!(f, "shared-loopback"),
        }
    }
}

/// One disagreement between a production path and its reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// The path that diverged.
    pub path: Path,
    /// Human-readable discrepancy summary.
    pub detail: String,
}

/// Deliberate engine defects injected into the paths under test (never
/// the oracle or the honest reference). A healthy harness must report
/// mismatches whenever any knob is non-zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sabotage {
    /// Widen every purge threshold by this many ticks.
    pub purge_skew: u64,
    /// Silently swallow this many speculative retractions.
    pub retraction_drop: u64,
}

impl Sabotage {
    /// The purge-skew-only sabotage (the original fault knob).
    pub fn purge_skew(ticks: u64) -> Sabotage {
        Sabotage {
            purge_skew: ticks,
            ..Sabotage::default()
        }
    }
}

/// The engine configuration a case prescribes, with the sabotage knobs
/// applied (all-zero for honest runs).
pub fn engine_config(case: &CaseData, sabotage: Sabotage) -> EngineConfig {
    engine_config_from(&case.config, sabotage)
}

/// [`engine_config`] from the bare knobs (the multi-query mode has no
/// single [`CaseData`]).
pub fn engine_config_from(config: &crate::case::CaseConfig, sabotage: Sabotage) -> EngineConfig {
    EngineConfig {
        k_slack: Duration::new(config.k),
        purge: match config.purge_every {
            Some(n) => sequin_runtime::purge::PurgePolicy::batched(n),
            None => sequin_runtime::purge::PurgePolicy::NEVER,
        },
        policy: config.policy,
        watermark: match config.watermark {
            1 => WatermarkSource::Punctuation,
            2 => WatermarkSource::Both,
            _ => WatermarkSource::KSlack,
        },
        purge_horizon_skew: sabotage.purge_skew,
        retraction_drop: sabotage.retraction_drop,
        ..EngineConfig::default()
    }
}

/// A stable, comparable rendering of one output item (kind, constituent
/// `(ts, id)` pairs, emission sequence number, emission clock).
pub(crate) type OutputRepr = (u8, Vec<(u64, u64)>, u64, u64);

pub(crate) fn repr(o: &OutputItem) -> OutputRepr {
    (
        match o.kind {
            OutputKind::Insert => 0,
            OutputKind::Retract => 1,
        },
        o.m.events()
            .iter()
            .map(|e| (e.ts().ticks(), e.id().get()))
            .collect(),
        o.emit_seq.get(),
        o.emit_clock.ticks(),
    )
}

fn reprs(out: &[OutputItem]) -> Vec<OutputRepr> {
    out.iter().map(repr).collect()
}

/// Net deliveries as a sorted multiset of `(kind, ids)` — the
/// exactly-once identity used for the crash/resume path, where emission
/// sequence numbers legitimately differ across the restart.
pub(crate) fn delivery_multiset(out: &[OutputItem]) -> Vec<(u8, Vec<u64>)> {
    let mut v: Vec<(u8, Vec<u64>)> = out
        .iter()
        .map(|o| {
            (
                match o.kind {
                    OutputKind::Insert => 0,
                    OutputKind::Retract => 1,
                },
                o.m.events().iter().map(|e| e.id().get()).collect(),
            )
        })
        .collect();
    v.sort();
    v
}

fn drive(engine: &mut dyn Engine, items: &[StreamItem]) -> Vec<OutputItem> {
    let mut out = Vec::new();
    for item in items {
        out.extend(engine.ingest(item));
    }
    out.extend(engine.finish());
    out
}

pub(crate) fn first_diff(a: &[OutputRepr], b: &[OutputRepr]) -> String {
    if a.len() != b.len() {
        return format!("{} outputs vs {} canonical", b.len(), a.len());
    }
    for (ix, (x, y)) in a.iter().zip(b).enumerate() {
        if x != y {
            return format!("output {ix}: {y:?} vs canonical {x:?}");
        }
    }
    "identical".to_owned()
}

/// Worker counts the sharded paths run at when none are pinned: one even
/// and one prime count, so slicing artifacts that depend on divisibility
/// surface.
pub const DEFAULT_SHARD_COUNTS: &[usize] = &[2, 7];

/// Runs every production path for `case` at the default shard counts,
/// returning all disagreements (empty = the case is clean).
/// `purge_skew > 0` sabotages purge in every engine under test (but never
/// the oracle), which a correct harness must report as mismatches.
pub fn check_case(case: &CaseData, purge_skew: u64) -> Vec<Mismatch> {
    check_case_sharded(case, Sabotage::purge_skew(purge_skew), DEFAULT_SHARD_COUNTS)
}

/// [`check_case`] with the full [`Sabotage`] bundle and the sharded paths
/// pinned to `shard_counts` worker pools (the `sequin sim --shards`
/// knob). The sharded crash+resume path checkpoints at the first count
/// and resumes at the last (bumped when they coincide, so the shard count
/// always *changes* across the crash).
pub fn check_case_sharded(
    case: &CaseData,
    sabotage: Sabotage,
    shard_counts: &[usize],
) -> Vec<Mismatch> {
    let mut mismatches = Vec::new();
    let registry = sim_registry();
    let cfg = engine_config(case, sabotage);

    // front-end cross-check: builder and parser must agree
    let text = case.query.text();
    let built = match case.query.build(&registry) {
        Ok(q) => q,
        Err(e) => {
            mismatches.push(Mismatch {
                path: Path::BuilderParser,
                detail: format!("builder rejected generated query `{text}`: {e}"),
            });
            return mismatches;
        }
    };
    match parse(&text, &registry) {
        Ok(parsed) => {
            if *parsed != *built {
                mismatches.push(Mismatch {
                    path: Path::BuilderParser,
                    detail: format!("`{text}`: builder and parser queries differ"),
                });
            }
        }
        Err(e) => {
            mismatches.push(Mismatch {
                path: Path::BuilderParser,
                detail: format!("parser rejected generated query `{text}`: {e}"),
            });
        }
    }
    let query = built;
    let items = case.stream(&registry);

    // canonical: single-threaded NativeEngine, one item at a time
    let mut canon_engine = NativeEngine::new(Arc::clone(&query), cfg);
    let mut canonical = Vec::new();
    for item in &items {
        canonical.extend(canon_engine.ingest(item));
    }
    canonical.extend(canon_engine.finish());
    let canon_repr = reprs(&canonical);

    // oracle: exact match set over the deduplicated sorted history
    let events = case.unique_events(&registry);
    let expected = reference_matches(&query, &events);
    let got: BTreeSet<Vec<u64>> = sequin_metrics::net_inserts(&canonical)
        .into_iter()
        .map(|k| k.event_ids().iter().map(|id| id.get()).collect())
        .collect();
    if got != expected {
        let missing: Vec<_> = expected.difference(&got).take(3).collect();
        let spurious: Vec<_> = got.difference(&expected).take(3).collect();
        mismatches.push(Mismatch {
            path: Path::Oracle,
            detail: format!(
                "{} matches vs oracle {} (missing e.g. {missing:?}, spurious e.g. {spurious:?})",
                got.len(),
                expected.len()
            ),
        });
    }

    // routed sharded pools: identical output, including emission
    // bookkeeping
    for &shards in shard_counts {
        let shards = shards.max(1);
        let mut eng = ShardedEngine::new(Arc::clone(&query), cfg, shards);
        let out = drive(&mut eng, &items);
        let r = reprs(&out);
        if r != canon_repr {
            mismatches.push(Mismatch {
                path: Path::Sharded(shards),
                detail: first_diff(&canon_repr, &r),
            });
        }
    }

    // batched ingestion: identical output
    {
        let mut eng = make_engine(Strategy::Native, Arc::clone(&query), cfg);
        let mut out = Vec::new();
        for chunk in items.chunks(case.config.batch.max(1)) {
            out.extend(eng.ingest_batch(chunk).into_iter().map(|(_, o)| o));
        }
        out.extend(eng.finish());
        let r = reprs(&out);
        if r != canon_repr {
            mismatches.push(Mismatch {
                path: Path::Batched,
                detail: first_diff(&canon_repr, &r),
            });
        }
    }

    // crash + checkpoint resume: exactly-once deliveries
    {
        let policy = CheckpointPolicy::every(case.config.ckpt_every.max(1));
        let fresh = || make_engine(Strategy::Native, Arc::clone(&query), cfg);
        let mut ck = Checkpointer::new(fresh(), policy);
        let crash_at = (case.config.crash_at as usize).min(items.len());
        let mut delivered = Vec::new();
        for item in &items[..crash_at] {
            delivered.extend(ck.ingest(item));
        }
        let saved = ck.store().clone();
        drop(ck); // crash: only the persisted store survives
        let (mut ck, replay_from) = Checkpointer::resume(fresh(), policy, saved);
        for item in &items[replay_from as usize..] {
            delivered.extend(ck.ingest(item));
        }
        delivered.extend(ck.finish());
        if delivery_multiset(&delivered) != delivery_multiset(&canonical) {
            mismatches.push(Mismatch {
                path: Path::CrashResume,
                detail: format!(
                    "crash at item {crash_at} (resume from {replay_from}): {} deliveries vs {} canonical",
                    delivered.len(),
                    canonical.len()
                ),
            });
        }
    }

    // sharded crash + resume with a shard-count change: a `from`-worker
    // pool writes the checkpoints and a `to`-worker pool resumes them —
    // the shard-count-agnostic snapshot guarantee, end to end
    {
        let from = shard_counts.first().copied().unwrap_or(2).max(1);
        let mut to = shard_counts.last().copied().unwrap_or(7).max(1);
        if to == from {
            to = from + 3; // always actually change the count
        }
        let policy = CheckpointPolicy::every(case.config.ckpt_every.max(1));
        let pool = |n: usize| -> Box<dyn Engine> {
            Box::new(ShardedEngine::new(Arc::clone(&query), cfg, n))
        };
        let mut ck = Checkpointer::new(pool(from), policy);
        let crash_at = (case.config.crash_at as usize).min(items.len());
        let mut delivered = Vec::new();
        for item in &items[..crash_at] {
            delivered.extend(ck.ingest(item));
        }
        let saved = ck.store().clone();
        drop(ck); // crash: only the persisted store survives
        let (mut ck, replay_from) = Checkpointer::resume(pool(to), policy, saved);
        for item in &items[replay_from as usize..] {
            delivered.extend(ck.ingest(item));
        }
        delivered.extend(ck.finish());
        if delivery_multiset(&delivered) != delivery_multiset(&canonical) {
            mismatches.push(Mismatch {
                path: Path::ShardedResume(from, to),
                detail: format!(
                    "crash at item {crash_at} on {from} shards (resume from {replay_from} on {to}): {} deliveries vs {} canonical",
                    delivered.len(),
                    canonical.len()
                ),
            });
        }
    }

    // networked loopback: byte-identical frames (verified inside
    // loopback_run); gated per case because it boots a real TCP server
    if case.config.loopback {
        let mut core = CoreConfig::new(Arc::clone(&registry), Strategy::Native, cfg);
        core.shards = case.config.loopback_shards;
        if let Err(e) = loopback_run(core, std::slice::from_ref(&text), &items, case.config.batch) {
            mismatches.push(Mismatch {
                path: Path::Loopback,
                detail: e,
            });
        }
    }

    mismatches
}
