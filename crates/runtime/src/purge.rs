//! K-slack / punctuation-safe purge thresholds.
//!
//! Under a disorder bound `K` (every event arrives at most `K` ticks behind
//! the maximum occurrence timestamp seen so far, the *clock*), the stream's
//! **low-watermark** is `clock − K`: no in-flight event has a smaller
//! timestamp. Punctuations assert a low-watermark directly. All purge
//! safety below is expressed against the watermark:
//!
//! * an instance in a **non-final** stack with timestamp `t` can only join
//!   matches whose last positive has timestamp `≤ t + W`; once
//!   `watermark > t + W` no such terminator can still arrive *and* every
//!   already-arrived terminator has already triggered construction — purge
//!   when `t < watermark − W`;
//! * an instance in the **final** stack only joins matches whose other
//!   constituents have strictly smaller timestamps; once `watermark > t`
//!   none of those can still arrive — purge when `t < watermark`;
//! * a **negative** event with timestamp `t` guards negation regions
//!   `[s, e)` with `e − s ≤ 2W + 1` (the widest is a leading region paired
//!   with a trailing deadline). It is needed while some region containing
//!   it is still unsealed (`e > watermark`), which implies
//!   `t ≥ s > watermark − 2W − 1`; purge when `t < watermark − 2W − 1`.
//!
//! The in-order classic engine uses the same formulas with `K = 0`
//! (`watermark = clock`).

use sequin_types::{Duration, Timestamp};

/// The low-watermark for a K-slack stream: `clock − K`, clamped at zero.
pub fn watermark(clock: Timestamp, k: Duration) -> Timestamp {
    clock.saturating_sub(k)
}

/// Purge threshold for non-final positive stacks: instances with
/// `ts < watermark − W` are dead.
pub fn prefix_threshold(watermark: Timestamp, window: Duration) -> Timestamp {
    watermark.saturating_sub(window)
}

/// Purge threshold for the final positive stack: instances with
/// `ts < watermark` are dead.
pub fn final_threshold(watermark: Timestamp) -> Timestamp {
    watermark
}

/// Purge threshold for negative-event indexes: negatives with
/// `ts < watermark − (2W + 1)` can no longer fall inside any unsealed
/// negation region (see the module docs for the derivation).
pub fn negative_threshold(watermark: Timestamp, window: Duration) -> Timestamp {
    watermark
        .saturating_sub(window)
        .saturating_sub(window)
        .saturating_sub(Duration::new(1))
}

/// Batching policy for purge passes.
///
/// Purging on every event keeps state minimal but pays a pass per event;
/// batching amortizes the cost (the paper's purge optimization). `every_n =
/// 1` purges per event; `None` disables purging entirely (the memory-blowup
/// baseline for the ablation experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PurgePolicy {
    /// Run a purge pass every `n` ingested items; `None` = never purge.
    pub every_n: Option<u32>,
}

impl PurgePolicy {
    /// Purge on every ingested item.
    pub const EAGER: PurgePolicy = PurgePolicy { every_n: Some(1) };
    /// Never purge (unbounded state).
    pub const NEVER: PurgePolicy = PurgePolicy { every_n: None };

    /// Purge every `n` items.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn batched(n: u32) -> PurgePolicy {
        assert!(n > 0, "batch size must be positive");
        PurgePolicy { every_n: Some(n) }
    }

    /// True when a purge pass is due after `items_seen` ingested items.
    pub fn due(&self, items_seen: u64) -> bool {
        match self.every_n {
            Some(n) => items_seen % u64::from(n) == 0,
            None => false,
        }
    }
}

impl Default for PurgePolicy {
    fn default() -> Self {
        PurgePolicy::batched(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermark_is_clock_minus_k() {
        assert_eq!(
            watermark(Timestamp::new(100), Duration::new(30)),
            Timestamp::new(70)
        );
        assert_eq!(
            watermark(Timestamp::new(10), Duration::new(30)),
            Timestamp::MIN
        );
    }

    #[test]
    fn thresholds() {
        let wm = Timestamp::new(100);
        assert_eq!(prefix_threshold(wm, Duration::new(40)), Timestamp::new(60));
        assert_eq!(final_threshold(wm), wm);
        assert_eq!(
            prefix_threshold(Timestamp::new(5), Duration::new(40)),
            Timestamp::MIN
        );
    }

    #[test]
    fn negative_threshold_reaches_back_two_windows() {
        assert_eq!(
            negative_threshold(Timestamp::new(100), Duration::new(20)),
            Timestamp::new(59)
        );
        assert_eq!(
            negative_threshold(Timestamp::new(10), Duration::new(20)),
            Timestamp::MIN
        );
    }

    #[test]
    fn policy_cadence() {
        let p = PurgePolicy::batched(3);
        assert!(p.due(3));
        assert!(p.due(6));
        assert!(!p.due(4));
        assert!(PurgePolicy::EAGER.due(1));
        assert!(PurgePolicy::EAGER.due(2));
        assert!(!PurgePolicy::NEVER.due(1_000_000));
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_panics() {
        PurgePolicy::batched(0);
    }

    #[test]
    fn default_is_batched() {
        assert_eq!(PurgePolicy::default().every_n, Some(64));
    }
}
