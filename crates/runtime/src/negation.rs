//! Negation regions and the negative-event index.

use std::sync::Arc;

use sequin_query::Query;
use sequin_types::{Duration, EventRef, Timestamp};

use crate::stack::AisStack;
use crate::stats::RuntimeStats;

/// The half-open timestamp interval `[start, end)` a negated component
/// guards for one concrete match.
///
/// * between two positives `l`, `r`: `[l.ts + 1, r.ts)` (strictly between);
/// * leading negation: `[first.ts − W, first.ts)` (clamped at 0);
/// * trailing negation: `[last.ts + 1, first.ts + W + 1)`, i.e.
///   `(last.ts, first.ts + W]`.
///
/// A region is **sealed** once the stream's low-watermark (under K-slack:
/// `clock − K`; under punctuation: the punctuation timestamp) reaches
/// `end` — from then on no event that could fall inside it is in flight,
/// and the negation check is final.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// Inclusive start.
    pub start: Timestamp,
    /// Exclusive end.
    pub end: Timestamp,
}

impl Region {
    /// True when the region contains no timestamps at all.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// True once no event that could land in this region is still in
    /// flight, given the stream's low-watermark (every future event has
    /// `ts >= watermark`).
    pub fn sealed_by(&self, watermark: Timestamp) -> bool {
        watermark >= self.end
    }
}

/// Computes the negation regions of a match (positive-order `events`),
/// in [`Query::negations`] order.
pub fn regions(query: &Query, events: &[EventRef]) -> Vec<Region> {
    let window = query.window();
    let first = events
        .first()
        .expect("match has at least one positive")
        .ts();
    let last = events.last().expect("match has at least one positive").ts();
    query
        .negations()
        .iter()
        .map(|n| match (n.left, n.right) {
            (Some(l), Some(r)) => Region {
                start: events[l].ts().saturating_add(Duration::new(1)),
                end: events[r].ts(),
            },
            (None, Some(r)) => {
                debug_assert_eq!(r, 0);
                Region {
                    start: first.saturating_sub(window),
                    end: events[r].ts(),
                }
            }
            (Some(_), None) => Region {
                start: last.saturating_add(Duration::new(1)),
                end: first
                    .saturating_add(window)
                    .saturating_add(Duration::new(1)),
            },
            (None, None) => unreachable!("negation with no positive flank"),
        })
        .collect()
}

/// The latest region end across all negations of a match — the watermark a
/// conservative engine must wait for before emitting the match.
pub fn seal_deadline(query: &Query, events: &[EventRef]) -> Option<Timestamp> {
    regions(query, events).iter().map(|r| r.end).max()
}

/// Index of candidate *negative* events, one [`AisStack`] per negated
/// component, pre-filtered by the negation's component-local predicates.
#[derive(Debug, Clone)]
pub struct NegationIndex {
    query: Arc<Query>,
    stacks: Vec<AisStack>,
}

impl NegationIndex {
    /// Creates an empty index for `query`.
    pub fn new(query: Arc<Query>) -> NegationIndex {
        let stacks = vec![AisStack::new(); query.negations().len()];
        NegationIndex { query, stacks }
    }

    /// Offers an event to the index; it is stored for every negated
    /// component whose type matches and whose *local* predicates (those
    /// referencing only the negated component) accept it. Returns `true`
    /// if the event was stored anywhere.
    pub fn offer(&mut self, event: &EventRef, stats: &mut RuntimeStats) -> bool {
        let mut stored = false;
        for (ix, neg) in self.query.negations().iter().enumerate() {
            if !neg.matches_type(event.event_type()) {
                continue;
            }
            let mut binding: Vec<Option<&EventRef>> = vec![None; self.query.components().len()];
            binding[neg.comp] = Some(event);
            let locally_ok = neg.predicates.iter().all(|p| {
                // only local predicates are decidable with just the negative
                match p.eval(&binding) {
                    Some(ok) => {
                        stats.predicate_evals += 1;
                        ok
                    }
                    None => true, // involves positives: decide at check time
                }
            });
            if locally_ok && self.stacks[ix].insert(Arc::clone(event)).is_some() {
                stored = true;
                stats.insertions += 1;
            }
        }
        stored
    }

    /// True when some stored negative event invalidates the match
    /// `events` (positive order): it falls in the negation's region and
    /// satisfies the negation's predicates under the full binding.
    pub fn violates(&self, events: &[EventRef], stats: &mut RuntimeStats) -> bool {
        let regions = regions(&self.query, events);
        for (ix, neg) in self.query.negations().iter().enumerate() {
            let region = regions[ix];
            if region.is_empty() {
                continue;
            }
            let mut binding = self.query.binding_from_positives(events);
            for candidate in self.stacks[ix].range(region.start, region.end) {
                binding[neg.comp] = Some(candidate);
                let all_hold = neg.predicates.iter().all(|p| {
                    stats.predicate_evals += 1;
                    p.eval(&binding) == Some(true)
                });
                if all_hold {
                    stats.negated_matches += 1;
                    return true;
                }
            }
        }
        false
    }

    /// Purges negative events below `threshold` from every stack.
    pub fn purge_before(&mut self, threshold: Timestamp, stats: &mut RuntimeStats) -> usize {
        let purged: usize = self
            .stacks
            .iter_mut()
            .map(|s| s.purge_before(threshold))
            .sum();
        stats.purged += purged as u64;
        purged
    }

    /// Total stored negative events.
    pub fn len(&self) -> usize {
        self.stacks.iter().map(AisStack::len).sum()
    }

    /// True when no negative events are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl NegationIndex {
    /// Serializes the stored negative events (the query itself is not
    /// serialized — restore re-binds to the live query object).
    pub fn snapshot_into(&self, w: &mut sequin_types::Writer) {
        use sequin_types::Encode as _;
        self.stacks.encode(w);
    }

    /// Rebuilds an index for `query` from bytes written by
    /// [`NegationIndex::snapshot_into`]. Rejects snapshots whose stack
    /// count disagrees with the query's negation count.
    pub fn restore(
        query: Arc<Query>,
        r: &mut sequin_types::Reader<'_>,
    ) -> Result<NegationIndex, sequin_types::CodecError> {
        use sequin_types::Decode as _;
        let stacks: Vec<AisStack> = Vec::decode(r)?;
        if stacks.len() != query.negations().len() {
            return Err(sequin_types::CodecError::SnapshotMismatch(
                "query (negation count)",
            ));
        }
        Ok(NegationIndex { query, stacks })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sequin_query::parse;
    use sequin_types::{Event, EventId, TypeRegistry, Value, ValueKind};

    fn registry() -> TypeRegistry {
        let mut reg = TypeRegistry::new();
        for name in ["A", "B", "N"] {
            reg.declare(name, &[("x", ValueKind::Int)]).unwrap();
        }
        reg
    }

    fn ev(reg: &TypeRegistry, ty: &str, id: u64, ts: u64, x: i64) -> EventRef {
        Arc::new(
            Event::builder(reg.lookup(ty).unwrap(), Timestamp::new(ts))
                .id(EventId::new(id))
                .attr(Value::Int(x))
                .build(),
        )
    }

    #[test]
    fn middle_region_strictly_between_flanks() {
        let reg = registry();
        let q = parse("PATTERN SEQ(A a, !N n, B b) WITHIN 100", &reg).unwrap();
        let events = vec![ev(&reg, "A", 1, 10, 0), ev(&reg, "B", 2, 30, 0)];
        let rs = regions(&q, &events);
        assert_eq!(
            rs,
            vec![Region {
                start: Timestamp::new(11),
                end: Timestamp::new(30)
            }]
        );
        assert_eq!(seal_deadline(&q, &events), Some(Timestamp::new(30)));
    }

    #[test]
    fn leading_and_trailing_regions() {
        let reg = registry();
        let q = parse("PATTERN SEQ(!N n1, A a, B b, !N n2) WITHIN 20", &reg).unwrap();
        let events = vec![ev(&reg, "A", 1, 50, 0), ev(&reg, "B", 2, 60, 0)];
        let rs = regions(&q, &events);
        // leading: [first - W, first)
        assert_eq!(
            rs[0],
            Region {
                start: Timestamp::new(30),
                end: Timestamp::new(50)
            }
        );
        // trailing: (last, first + W]
        assert_eq!(
            rs[1],
            Region {
                start: Timestamp::new(61),
                end: Timestamp::new(71)
            }
        );
        assert_eq!(seal_deadline(&q, &events), Some(Timestamp::new(71)));
    }

    #[test]
    fn leading_region_clamps_at_zero() {
        let reg = registry();
        let q = parse("PATTERN SEQ(!N n, A a) WITHIN 100", &reg).unwrap();
        let events = vec![ev(&reg, "A", 1, 10, 0)];
        let rs = regions(&q, &events);
        assert_eq!(
            rs[0],
            Region {
                start: Timestamp::MIN,
                end: Timestamp::new(10)
            }
        );
    }

    #[test]
    fn region_sealing() {
        let r = Region {
            start: Timestamp::new(10),
            end: Timestamp::new(20),
        };
        assert!(!r.sealed_by(Timestamp::new(19)));
        assert!(r.sealed_by(Timestamp::new(20)));
        assert!(!r.is_empty());
        assert!(Region {
            start: Timestamp::new(5),
            end: Timestamp::new(5)
        }
        .is_empty());
    }

    #[test]
    fn offer_filters_by_type_and_local_predicate() {
        let reg = registry();
        let q = parse("PATTERN SEQ(A a, !N n, B b) WHERE n.x > 5 WITHIN 100", &reg).unwrap();
        let mut idx = NegationIndex::new(Arc::clone(&q));
        let mut stats = RuntimeStats::default();
        assert!(
            !idx.offer(&ev(&reg, "A", 1, 10, 0), &mut stats),
            "wrong type ignored"
        );
        assert!(
            !idx.offer(&ev(&reg, "N", 2, 15, 3), &mut stats),
            "fails local predicate"
        );
        assert!(idx.offer(&ev(&reg, "N", 3, 15, 9), &mut stats));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn violates_checks_region_and_predicates() {
        let reg = registry();
        let q = parse(
            "PATTERN SEQ(A a, !N n, B b) WHERE n.x == a.x WITHIN 100",
            &reg,
        )
        .unwrap();
        let mut idx = NegationIndex::new(Arc::clone(&q));
        let mut stats = RuntimeStats::default();
        idx.offer(&ev(&reg, "N", 10, 20, 7), &mut stats);

        let a = ev(&reg, "A", 1, 10, 7);
        let b = ev(&reg, "B", 2, 30, 0);
        assert!(idx.violates(&[Arc::clone(&a), Arc::clone(&b)], &mut stats));

        // different correlation value: no violation
        let a2 = ev(&reg, "A", 3, 10, 8);
        assert!(!idx.violates(&[a2, Arc::clone(&b)], &mut stats));

        // negative outside the region: no violation
        let b_early = ev(&reg, "B", 4, 15, 0);
        assert!(!idx.violates(&[a, b_early], &mut stats));
    }

    #[test]
    fn duplicate_negative_not_stored_twice() {
        let reg = registry();
        let q = parse("PATTERN SEQ(A a, !N n, B b) WITHIN 100", &reg).unwrap();
        let mut idx = NegationIndex::new(Arc::clone(&q));
        let mut stats = RuntimeStats::default();
        let n = ev(&reg, "N", 1, 20, 0);
        assert!(idx.offer(&n, &mut stats));
        assert!(!idx.offer(&n, &mut stats));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn purge_removes_old_negatives() {
        let reg = registry();
        let q = parse("PATTERN SEQ(A a, !N n, B b) WITHIN 100", &reg).unwrap();
        let mut idx = NegationIndex::new(Arc::clone(&q));
        let mut stats = RuntimeStats::default();
        idx.offer(&ev(&reg, "N", 1, 10, 0), &mut stats);
        idx.offer(&ev(&reg, "N", 2, 50, 0), &mut stats);
        assert_eq!(idx.purge_before(Timestamp::new(20), &mut stats), 1);
        assert_eq!(idx.len(), 1);
        assert!(!idx.is_empty());
        assert_eq!(stats.purged, 1);
    }
}
