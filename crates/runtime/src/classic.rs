//! The classic in-order SASE-style pipeline (state of the art circa 2006).
//!
//! This is the engine the paper analyzes as broken under out-of-order
//! arrival, reproduced faithfully:
//!
//! * **append-only stacks**: each arriving event is pushed on top of its
//!   component's stack, annotated with a *recent instance in previous*
//!   (RIP) pointer — the index of the newest instance of the previous
//!   stack at insertion time;
//! * **last-type-triggered construction**: only an arrival of the final
//!   positive component's type starts a DFS down the RIP pointers;
//! * **arrival-driven purge** (`K = 0` watermark): state older than the
//!   window relative to the newest arrival is evicted.
//!
//! With timestamp-ordered input this produces exactly the correct match
//! set. Under disorder it both **misses matches** (a late event is pushed
//! above newer events, so earlier-arrived terminators never see it; RIP
//! pointers misdirect the DFS) and **emits phantoms** (the stack discipline
//! *implies* sequence order instead of checking it, and eager negation
//! checks run before late negatives arrive) — precisely the failure modes
//! quantified in experiment E1.
//!
//! Negation caveat: like other eager in-order engines, a *trailing*
//! negation region extends into the future and is checked here against the
//! negatives seen so far; even on ordered input that can emit matches a
//! later negative invalidates. Conservative/sealed emission (the paper's
//! approach) lives in `sequin-engine`.

use std::sync::Arc;

use sequin_query::Query;
use sequin_types::{EventRef, Timestamp};

use crate::negation::NegationIndex;
use crate::purge::PurgePolicy;
use crate::stats::RuntimeStats;

/// One stack entry: the event plus its RIP pointer into the previous stack.
#[derive(Debug, Clone)]
struct Instance {
    event: EventRef,
    /// Index of the most recent instance of the previous stack at the time
    /// this instance was pushed; `None` for the first stack or when the
    /// previous stack's relevant prefix has been purged away.
    rip: Option<usize>,
}

/// The classic engine. Feed arrivals with [`ClassicSase::ingest`]; each
/// call returns the matches (positive-order event vectors) it triggered.
#[derive(Debug, Clone)]
pub struct ClassicSase {
    query: Arc<Query>,
    /// One append-only stack per positive slot except the last (terminator
    /// arrivals trigger construction and are not retained).
    stacks: Vec<Vec<Instance>>,
    negatives: NegationIndex,
    policy: PurgePolicy,
    clock: Timestamp,
    items_seen: u64,
    stats: RuntimeStats,
}

impl ClassicSase {
    /// Creates an engine for `query` with the given purge cadence.
    pub fn new(query: Arc<Query>, policy: PurgePolicy) -> ClassicSase {
        let m = query.positive_len();
        ClassicSase {
            negatives: NegationIndex::new(Arc::clone(&query)),
            stacks: vec![Vec::new(); m.saturating_sub(1)],
            query,
            policy,
            clock: Timestamp::MIN,
            items_seen: 0,
            stats: RuntimeStats::default(),
        }
    }

    /// The query being evaluated.
    pub fn query(&self) -> &Arc<Query> {
        &self.query
    }

    /// Accumulated operator statistics.
    pub fn stats(&self) -> RuntimeStats {
        self.stats
    }

    /// Total instances currently held (positive stacks + negative index).
    pub fn state_size(&self) -> usize {
        self.stacks.iter().map(Vec::len).sum::<usize>() + self.negatives.len()
    }

    /// Ingests one arrival; returns the positive-order event vectors of
    /// every match it triggered.
    pub fn ingest(&mut self, event: &EventRef) -> Vec<Vec<EventRef>> {
        self.items_seen += 1;
        self.clock = self.clock.max(event.ts());
        let mut out = Vec::new();

        self.negatives.offer(event, &mut self.stats);

        let m = self.query.positive_len();
        // snapshot stack heights first: a repeated-type event entering two
        // stacks in one arrival must not become its own RIP predecessor
        let heights: Vec<usize> = self.stacks.iter().map(Vec::len).collect();
        for slot in self.query.slots_for_type(event.event_type()) {
            if !self.passes_local_predicates(slot, event) {
                continue;
            }
            if slot + 1 == m {
                self.construct(event, &mut out, &heights);
            } else {
                // an instance with no possible predecessor is dead on
                // arrival; classic SASE skips storing it
                let rip = if slot == 0 {
                    None
                } else if heights[slot - 1] == 0 {
                    continue;
                } else {
                    Some(heights[slot - 1] - 1)
                };
                self.stacks[slot].push(Instance {
                    event: Arc::clone(event),
                    rip,
                });
                self.stats.insertions += 1;
            }
        }

        if self.policy.due(self.items_seen) {
            self.purge();
        }
        out
    }

    fn passes_local_predicates(&mut self, slot: usize, event: &EventRef) -> bool {
        let mut binding: Vec<Option<&EventRef>> = vec![None; self.query.components().len()];
        binding[self.query.positive_comp(slot)] = Some(event);
        for pred in self.query.local_predicates(slot) {
            self.stats.predicate_evals += 1;
            if pred.eval(&binding) != Some(true) {
                return false;
            }
        }
        true
    }

    /// DFS down the RIP pointers from a terminator arrival. `heights` are
    /// the stack heights before this arrival's insertions, so a
    /// repeated-type terminator cannot chain through its own copy.
    fn construct(
        &mut self,
        terminator: &EventRef,
        out: &mut Vec<Vec<EventRef>>,
        heights: &[usize],
    ) {
        let m = self.query.positive_len();
        let mut chosen: Vec<Option<EventRef>> = vec![None; m];
        chosen[m - 1] = Some(Arc::clone(terminator));
        if !self.check_slot(&chosen, m - 1) {
            return;
        }
        if m == 1 {
            self.emit(&chosen, out);
            return;
        }
        let top = match heights[m - 2].checked_sub(1) {
            Some(top) => top,
            None => return,
        };
        self.descend(m - 2, top, &mut chosen, out);
    }

    fn descend(
        &mut self,
        slot: usize,
        rip: usize,
        chosen: &mut Vec<Option<EventRef>>,
        out: &mut Vec<Vec<EventRef>>,
    ) {
        let anchor_ts = chosen
            .last()
            .and_then(|c| c.as_ref())
            .expect("terminator bound")
            .ts();
        let window = self.query.window();
        // newest-first, as SASE's stack DFS does
        for ix in (0..=rip).rev() {
            let inst = self.stacks[slot][ix].clone();
            self.stats.dfs_steps += 1;
            // window pruning on the *claimed* span; under disorder a
            // candidate "newer" than the anchor slips through (phantom)
            if inst.event.ts().saturating_add(window) < anchor_ts {
                continue;
            }
            chosen[slot] = Some(Arc::clone(&inst.event));
            if self.check_slot(chosen, slot) {
                if slot == 0 {
                    self.emit(chosen, out);
                } else if let Some(prev_rip) = inst.rip {
                    self.descend(slot - 1, prev_rip, chosen, out);
                }
            }
            chosen[slot] = None;
        }
    }

    fn check_slot(&mut self, chosen: &[Option<EventRef>], slot: usize) -> bool {
        let comp = self.query.positive_comp(slot);
        let mut binding: Vec<Option<&EventRef>> = vec![None; self.query.components().len()];
        for (p, c) in chosen.iter().enumerate() {
            if let Some(ev) = c.as_ref() {
                binding[self.query.positive_comp(p)] = Some(ev);
            }
        }
        for pred in self.query.predicates() {
            if pred.mask().contains(comp) {
                self.stats.predicate_evals += 1;
                if pred.eval(&binding) == Some(false) {
                    return false;
                }
            }
        }
        true
    }

    fn emit(&mut self, chosen: &[Option<EventRef>], out: &mut Vec<Vec<EventRef>>) {
        let events: Vec<EventRef> = chosen
            .iter()
            .map(|c| Arc::clone(c.as_ref().expect("complete")))
            .collect();
        // window acceptance on the actual timestamps; a disordered (phantom)
        // sequence has last.ts <= first.ts and passes — the stack discipline
        // *implied* the order, it never checked it
        let first = events.first().expect("nonempty").ts();
        let last = events.last().expect("nonempty").ts();
        if last > first && last - first > self.query.window() {
            return;
        }
        if self.query.has_negation() && self.negatives.violates(&events, &mut self.stats) {
            return;
        }
        self.stats.matches_constructed += 1;
        out.push(events);
    }

    /// Arrival-driven purge with `K = 0`: evicts non-final instances with
    /// `ts + W < clock` and rewrites RIP pointers for the shifted indices.
    pub fn purge(&mut self) {
        self.stats.purge_runs += 1;
        let threshold = self.clock.saturating_sub(self.query.window());
        let mut removed_prev = 0usize;
        for slot in 0..self.stacks.len() {
            // fix pointers into the previous stack first
            if removed_prev > 0 {
                for inst in &mut self.stacks[slot] {
                    inst.rip = inst.rip.and_then(|r| r.checked_sub(removed_prev));
                }
            }
            let before = self.stacks[slot].len();
            // append-only stacks are arrival-ordered, not ts-ordered, so
            // the classic purge must scan (it cannot drain a prefix)
            self.stacks[slot].retain(|inst| inst.event.ts() >= threshold);
            removed_prev = before - self.stacks[slot].len();
            self.stats.purged += removed_prev as u64;
        }
        self.negatives.purge_before(threshold, &mut self.stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sequin_query::parse;
    use sequin_types::{Event, EventId, TypeRegistry, Value, ValueKind};

    fn registry() -> TypeRegistry {
        let mut reg = TypeRegistry::new();
        for name in ["A", "B", "C", "N"] {
            reg.declare(name, &[("x", ValueKind::Int)]).unwrap();
        }
        reg
    }

    fn ev(reg: &TypeRegistry, ty: &str, id: u64, ts: u64, x: i64) -> EventRef {
        Arc::new(
            Event::builder(reg.lookup(ty).unwrap(), Timestamp::new(ts))
                .id(EventId::new(id))
                .attr(Value::Int(x))
                .build(),
        )
    }

    fn ids(matches: &[Vec<EventRef>]) -> Vec<Vec<u64>> {
        let mut v: Vec<Vec<u64>> = matches
            .iter()
            .map(|m| m.iter().map(|e| e.id().get()).collect())
            .collect();
        v.sort();
        v
    }

    #[test]
    fn in_order_finds_all_combinations() {
        let reg = registry();
        let q = parse("PATTERN SEQ(A a, B b) WITHIN 100", &reg).unwrap();
        let mut eng = ClassicSase::new(q, PurgePolicy::NEVER);
        let mut all = Vec::new();
        for e in [
            ev(&reg, "A", 1, 10, 0),
            ev(&reg, "A", 2, 20, 0),
            ev(&reg, "B", 3, 30, 0),
            ev(&reg, "B", 4, 40, 0),
        ] {
            all.extend(eng.ingest(&e));
        }
        assert_eq!(
            ids(&all),
            vec![vec![1, 3], vec![1, 4], vec![2, 3], vec![2, 4]]
        );
    }

    #[test]
    fn in_order_respects_window_and_predicates() {
        let reg = registry();
        let q = parse("PATTERN SEQ(A a, B b) WHERE a.x == b.x WITHIN 15", &reg).unwrap();
        let mut eng = ClassicSase::new(q, PurgePolicy::NEVER);
        let mut all = Vec::new();
        for e in [
            ev(&reg, "A", 1, 10, 7),
            ev(&reg, "A", 2, 20, 8),
            ev(&reg, "B", 3, 30, 7), // window excludes A1 (span 20), x excludes A2
            ev(&reg, "B", 4, 34, 8), // x matches A2, span 14 ok
        ] {
            all.extend(eng.ingest(&e));
        }
        assert_eq!(ids(&all), vec![vec![2, 4]]);
    }

    #[test]
    fn late_event_is_missed() {
        let reg = registry();
        let q = parse("PATTERN SEQ(A a, B b) WITHIN 100", &reg).unwrap();
        let mut eng = ClassicSase::new(q, PurgePolicy::NEVER);
        let mut all = Vec::new();
        // B(ts=30) arrives before A(ts=10): the A is pushed later, and no
        // further B arrival triggers construction -> the (A,B) match is lost
        for e in [ev(&reg, "B", 1, 30, 0), ev(&reg, "A", 2, 10, 0)] {
            all.extend(eng.ingest(&e));
        }
        assert!(all.is_empty());
    }

    #[test]
    fn disorder_can_emit_phantoms() {
        let reg = registry();
        let q = parse("PATTERN SEQ(A a, B b) WITHIN 100", &reg).unwrap();
        let mut eng = ClassicSase::new(q, PurgePolicy::NEVER);
        let mut all = Vec::new();
        // A(ts=50) arrives first, then B(ts=20): stack discipline implies
        // A-before-B, so a phantom (A@50, B@20) is emitted
        for e in [ev(&reg, "A", 1, 50, 0), ev(&reg, "B", 2, 20, 0)] {
            all.extend(eng.ingest(&e));
        }
        assert_eq!(ids(&all), vec![vec![1, 2]]);
    }

    #[test]
    fn three_component_chain() {
        let reg = registry();
        let q = parse("PATTERN SEQ(A a, B b, C c) WITHIN 100", &reg).unwrap();
        let mut eng = ClassicSase::new(q, PurgePolicy::NEVER);
        let mut all = Vec::new();
        for e in [
            ev(&reg, "A", 1, 10, 0),
            ev(&reg, "B", 2, 20, 0),
            ev(&reg, "A", 3, 25, 0),
            ev(&reg, "B", 4, 30, 0),
            ev(&reg, "C", 5, 40, 0),
        ] {
            all.extend(eng.ingest(&e));
        }
        assert_eq!(
            ids(&all),
            vec![vec![1, 2, 5], vec![1, 4, 5], vec![3, 4, 5]] // A3 after B2: no (3,2,5)
        );
    }

    #[test]
    fn negation_blocks_match_in_order() {
        let reg = registry();
        let q = parse("PATTERN SEQ(A a, !N n, B b) WITHIN 100", &reg).unwrap();
        let mut eng = ClassicSase::new(q, PurgePolicy::NEVER);
        let mut all = Vec::new();
        for e in [
            ev(&reg, "A", 1, 10, 0),
            ev(&reg, "N", 2, 15, 0),
            ev(&reg, "B", 3, 20, 0),
            ev(&reg, "A", 4, 30, 0),
            ev(&reg, "B", 5, 40, 0),
        ] {
            all.extend(eng.ingest(&e));
        }
        // (1,3) blocked by N@15; (1,5) blocked too (N in (10,40)); (4,5) clean
        assert_eq!(ids(&all), vec![vec![4, 5]]);
    }

    #[test]
    fn purge_evicts_expired_state_and_fixes_pointers() {
        let reg = registry();
        let q = parse("PATTERN SEQ(A a, B b, C c) WITHIN 10", &reg).unwrap();
        let mut eng = ClassicSase::new(q, PurgePolicy::EAGER);
        let mut all = Vec::new();
        for e in [
            ev(&reg, "A", 1, 10, 0),
            ev(&reg, "B", 2, 15, 0),
            ev(&reg, "A", 3, 100, 0),
            ev(&reg, "B", 4, 105, 0),
            ev(&reg, "C", 5, 108, 0),
        ] {
            all.extend(eng.ingest(&e));
        }
        assert_eq!(ids(&all), vec![vec![3, 4, 5]]);
        assert!(eng.stats().purged >= 2, "old A/B evicted");
        assert!(eng.state_size() <= 2);
    }

    #[test]
    fn purge_never_loses_valid_matches_in_order() {
        let reg = registry();
        let q = parse("PATTERN SEQ(A a, B b) WITHIN 50", &reg).unwrap();
        let mut eager = ClassicSase::new(Arc::clone(&q), PurgePolicy::EAGER);
        let mut never = ClassicSase::new(q, PurgePolicy::NEVER);
        let mut out_eager = Vec::new();
        let mut out_never = Vec::new();
        for i in 0..200u64 {
            let ty = if i % 3 == 0 { "B" } else { "A" };
            let e = ev(&reg, ty, i, i * 7, 0);
            out_eager.extend(eager.ingest(&e));
            out_never.extend(never.ingest(&e));
        }
        assert_eq!(ids(&out_eager), ids(&out_never));
        assert!(eager.state_size() < never.state_size());
    }

    #[test]
    fn single_component_pattern() {
        let reg = registry();
        let q = parse("PATTERN SEQ(A a) WHERE a.x > 0 WITHIN 10", &reg).unwrap();
        let mut eng = ClassicSase::new(q, PurgePolicy::EAGER);
        assert_eq!(eng.ingest(&ev(&reg, "A", 1, 5, 3)).len(), 1);
        assert_eq!(eng.ingest(&ev(&reg, "A", 2, 6, -3)).len(), 0);
        assert_eq!(eng.ingest(&ev(&reg, "B", 3, 7, 1)).len(), 0);
    }

    #[test]
    fn repeated_type_binds_distinct_events() {
        let reg = registry();
        let q = parse("PATTERN SEQ(A a1, A a2) WITHIN 100", &reg).unwrap();
        let mut eng = ClassicSase::new(q, PurgePolicy::NEVER);
        let mut all = Vec::new();
        for e in [
            ev(&reg, "A", 1, 10, 0),
            ev(&reg, "A", 2, 20, 0),
            ev(&reg, "A", 3, 30, 0),
        ] {
            all.extend(eng.ingest(&e));
        }
        // an event must never pair with its own copy in the other slot
        assert_eq!(ids(&all), vec![vec![1, 2], vec![1, 3], vec![2, 3]]);
    }

    #[test]
    fn dead_on_arrival_instances_not_stored() {
        let reg = registry();
        let q = parse("PATTERN SEQ(A a, B b, C c) WITHIN 100", &reg).unwrap();
        let mut eng = ClassicSase::new(q, PurgePolicy::NEVER);
        // B with no A below it is dropped
        eng.ingest(&ev(&reg, "B", 1, 10, 0));
        assert_eq!(eng.state_size(), 0);
        eng.ingest(&ev(&reg, "A", 2, 20, 0));
        eng.ingest(&ev(&reg, "B", 3, 30, 0));
        assert_eq!(eng.state_size(), 2);
    }
}
