//! Arrival-driven sequence construction with out-of-order compensation.

use std::sync::Arc;

use sequin_query::Query;
use sequin_types::{Duration, EventRef};

use crate::stack::AisStack;
use crate::stats::RuntimeStats;

/// Tunables for [`Constructor`] (the paper's CPU optimizations, each
/// individually switchable for ablation benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstructOpts {
    /// Locate each slot's candidate range by binary search on the
    /// window/sequence bounds instead of scanning the whole stack
    /// (the *early window cut-off* optimization).
    pub window_cutoff: bool,
}

impl Default for ConstructOpts {
    fn default() -> Self {
        ConstructOpts {
            window_cutoff: true,
        }
    }
}

/// Enumerates pattern matches from a set of active instance stacks.
///
/// The key operation is [`Constructor::matches_with`]: all matches that
/// **contain a given anchor event** at a given positive slot, drawing every
/// other constituent from the current stacks. Invoked on each insertion,
/// this realizes the paper's out-of-order compensation discipline:
///
/// > a match is emitted exactly when its last-arriving constituent is
/// > inserted — at that moment (and no earlier) all of its events are
/// > present, and no later insertion can produce it again because every
/// > match enumerated here contains the *new* event.
///
/// For in-order input, anchoring at the last slot only (as the classic
/// engine does) is equivalent.
#[derive(Debug, Clone)]
pub struct Constructor {
    query: Arc<Query>,
    opts: ConstructOpts,
}

impl Constructor {
    /// Creates a constructor for `query`.
    pub fn new(query: Arc<Query>, opts: ConstructOpts) -> Constructor {
        Constructor { query, opts }
    }

    /// The query this constructor evaluates.
    pub fn query(&self) -> &Arc<Query> {
        &self.query
    }

    /// Enumerates every match containing `anchor` at positive slot
    /// `anchor_slot`, with the remaining components drawn from `stacks`
    /// (one stack per positive slot, each sorted by timestamp). Matches are
    /// appended to `out` as positive-order event vectors.
    ///
    /// `stacks[anchor_slot]` may or may not already contain the anchor; it
    /// is never read for the anchor slot.
    ///
    /// # Panics
    ///
    /// Panics if `stacks.len()` differs from the query's positive length or
    /// `anchor_slot` is out of range.
    pub fn matches_with(
        &self,
        stacks: &[AisStack],
        anchor_slot: usize,
        anchor: &EventRef,
        stats: &mut RuntimeStats,
        out: &mut Vec<Vec<EventRef>>,
    ) {
        let m = self.query.positive_len();
        assert_eq!(stacks.len(), m, "one stack per positive slot");
        assert!(anchor_slot < m, "anchor slot out of range");

        let mut chosen: Vec<Option<EventRef>> = vec![None; m];
        chosen[anchor_slot] = Some(Arc::clone(anchor));

        let mut walker = Walker {
            query: &self.query,
            stacks,
            opts: self.opts,
            anchor_slot,
            window: self.query.window(),
            stats,
            out,
        };
        // Check the anchor's already-decidable predicates before descending.
        if !check_new_binding(&self.query, &chosen, anchor_slot, walker.stats) {
            return;
        }
        walker.extend_prefix(anchor_slot, &mut chosen);
    }
}

struct Walker<'a> {
    query: &'a Query,
    stacks: &'a [AisStack],
    opts: ConstructOpts,
    anchor_slot: usize,
    window: Duration,
    stats: &'a mut RuntimeStats,
    out: &'a mut Vec<Vec<EventRef>>,
}

impl Walker<'_> {
    /// Fills slots `anchor_slot-1 .. 0` (descending), then hands off to
    /// [`Walker::extend_suffix`].
    fn extend_prefix(&mut self, filled_down_to: usize, chosen: &mut [Option<EventRef>]) {
        if filled_down_to == 0 {
            self.extend_suffix(self.anchor_slot, chosen);
            return;
        }
        let slot = filled_down_to - 1;
        let next_ts = chosen[slot + 1].as_ref().expect("slot above is bound").ts();
        let anchor_ts = chosen[self.anchor_slot]
            .as_ref()
            .expect("anchor bound")
            .ts();
        // span <= W and last >= anchor force every prefix ts >= anchor - W
        let lo = anchor_ts.saturating_sub(self.window);
        let candidates: &[EventRef] = if self.opts.window_cutoff {
            self.stacks[slot].range(lo, next_ts)
        } else {
            self.stacks[slot].events()
        };
        // Iterate newest-first: matches closest to the anchor come out
        // first, matching the classic engine's most-recent-first DFS.
        for ev in candidates.iter().rev() {
            self.stats.dfs_steps += 1;
            if !self.opts.window_cutoff && (ev.ts() < lo || ev.ts() >= next_ts) {
                continue;
            }
            let ev = Arc::clone(ev);
            chosen[slot] = Some(ev);
            if check_new_binding(self.query, chosen, slot, self.stats) {
                self.extend_prefix(slot, chosen);
            }
            chosen[slot] = None;
        }
    }

    /// Fills slots `anchor_slot+1 .. m-1` (ascending); emits on completion.
    fn extend_suffix(&mut self, filled_up_to: usize, chosen: &mut [Option<EventRef>]) {
        let m = self.query.positive_len();
        if filled_up_to == m - 1 {
            let events: Vec<EventRef> = chosen
                .iter()
                .map(|c| Arc::clone(c.as_ref().expect("complete")))
                .collect();
            self.stats.matches_constructed += 1;
            self.out.push(events);
            return;
        }
        let slot = filled_up_to + 1;
        let prev_ts = chosen[slot - 1].as_ref().expect("slot below is bound").ts();
        let first_ts = chosen[0].as_ref().expect("prefix complete").ts();
        // strict sequence order and span <= W: prev < ts <= first + W
        let lo = prev_ts.saturating_add(Duration::new(1));
        let hi = first_ts
            .saturating_add(self.window)
            .saturating_add(Duration::new(1));
        let candidates: &[EventRef] = if self.opts.window_cutoff {
            self.stacks[slot].range(lo, hi)
        } else {
            self.stacks[slot].events()
        };
        for ev in candidates.iter() {
            self.stats.dfs_steps += 1;
            if !self.opts.window_cutoff && (ev.ts() < lo || ev.ts() >= hi) {
                continue;
            }
            let ev = Arc::clone(ev);
            chosen[slot] = Some(ev);
            if check_new_binding(self.query, chosen, slot, self.stats) {
                self.extend_suffix(slot, chosen);
            }
            chosen[slot] = None;
        }
    }
}

/// Evaluates, against the current partial assignment, every positive
/// predicate that references the just-bound slot. A predicate whose other
/// references are still unbound reports `None` (undecided) and does not
/// prune; each predicate therefore fires exactly once per complete path —
/// when its last referenced slot binds.
fn check_new_binding(
    query: &Query,
    chosen: &[Option<EventRef>],
    slot: usize,
    stats: &mut RuntimeStats,
) -> bool {
    let comp = query.positive_comp(slot);
    let mut binding: Vec<Option<&EventRef>> = vec![None; query.components().len()];
    for (p, c) in chosen.iter().enumerate() {
        if let Some(ev) = c.as_ref() {
            binding[query.positive_comp(p)] = Some(ev);
        }
    }
    for pred in query.predicates() {
        if pred.mask().contains(comp) {
            stats.predicate_evals += 1;
            if pred.eval(&binding) == Some(false) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use sequin_query::parse;
    use sequin_types::{Event, EventId, Timestamp, TypeRegistry, Value, ValueKind};

    fn registry() -> TypeRegistry {
        let mut reg = TypeRegistry::new();
        for name in ["A", "B", "C"] {
            reg.declare(name, &[("x", ValueKind::Int)]).unwrap();
        }
        reg
    }

    fn ev(reg: &TypeRegistry, ty: &str, id: u64, ts: u64, x: i64) -> EventRef {
        Arc::new(
            Event::builder(reg.lookup(ty).unwrap(), Timestamp::new(ts))
                .id(EventId::new(id))
                .attr(Value::Int(x))
                .build(),
        )
    }

    fn stacks_for(query: &Query, events: &[EventRef]) -> Vec<AisStack> {
        let mut stacks = vec![AisStack::new(); query.positive_len()];
        for e in events {
            for slot in query.slots_for_type(e.event_type()) {
                stacks[slot].insert(Arc::clone(e));
            }
        }
        stacks
    }

    fn run(
        query: &Arc<Query>,
        stacks: &[AisStack],
        slot: usize,
        anchor: &EventRef,
        cutoff: bool,
    ) -> Vec<Vec<u64>> {
        let ctor = Constructor::new(
            Arc::clone(query),
            ConstructOpts {
                window_cutoff: cutoff,
            },
        );
        let mut stats = RuntimeStats::default();
        let mut out = Vec::new();
        ctor.matches_with(stacks, slot, anchor, &mut stats, &mut out);
        let mut ids: Vec<Vec<u64>> = out
            .iter()
            .map(|m| m.iter().map(|e| e.id().get()).collect())
            .collect();
        ids.sort();
        ids
    }

    #[test]
    fn anchor_at_last_slot_enumerates_prefixes() {
        let reg = registry();
        let q = parse("PATTERN SEQ(A a, B b) WITHIN 100", &reg).unwrap();
        let a1 = ev(&reg, "A", 1, 10, 0);
        let a2 = ev(&reg, "A", 2, 20, 0);
        let b = ev(&reg, "B", 3, 30, 0);
        let stacks = stacks_for(&q, &[a1, a2, Arc::clone(&b)]);
        assert_eq!(run(&q, &stacks, 1, &b, true), vec![vec![1, 3], vec![2, 3]]);
    }

    #[test]
    fn anchor_in_middle_joins_both_sides() {
        let reg = registry();
        let q = parse("PATTERN SEQ(A a, B b, C c) WITHIN 100", &reg).unwrap();
        let a = ev(&reg, "A", 1, 10, 0);
        let b = ev(&reg, "B", 2, 20, 0);
        let c1 = ev(&reg, "C", 3, 30, 0);
        let c2 = ev(&reg, "C", 4, 40, 0);
        let stacks = stacks_for(&q, &[a, Arc::clone(&b), c1, c2]);
        assert_eq!(
            run(&q, &stacks, 1, &b, true),
            vec![vec![1, 2, 3], vec![1, 2, 4]]
        );
    }

    #[test]
    fn window_excludes_wide_spans() {
        let reg = registry();
        let q = parse("PATTERN SEQ(A a, B b) WITHIN 5", &reg).unwrap();
        let a = ev(&reg, "A", 1, 10, 0);
        let b = ev(&reg, "B", 2, 16, 0); // span 6 > 5
        let stacks = stacks_for(&q, &[a, Arc::clone(&b)]);
        assert!(run(&q, &stacks, 1, &b, true).is_empty());
        // span exactly W is allowed
        let b2 = ev(&reg, "B", 3, 15, 0);
        let a2 = ev(&reg, "A", 4, 10, 0);
        let q2 = parse("PATTERN SEQ(A a, B b) WITHIN 5", &reg).unwrap();
        let stacks2 = stacks_for(&q2, &[a2, Arc::clone(&b2)]);
        assert_eq!(run(&q2, &stacks2, 1, &b2, true), vec![vec![4, 3]]);
    }

    #[test]
    fn strict_timestamp_order_required() {
        let reg = registry();
        let q = parse("PATTERN SEQ(A a, B b) WITHIN 100", &reg).unwrap();
        let a = ev(&reg, "A", 1, 10, 0);
        let b = ev(&reg, "B", 2, 10, 0); // simultaneous: not a sequence
        let stacks = stacks_for(&q, &[a, Arc::clone(&b)]);
        assert!(run(&q, &stacks, 1, &b, true).is_empty());
    }

    #[test]
    fn predicates_prune_during_walk() {
        let reg = registry();
        let q = parse("PATTERN SEQ(A a, B b) WHERE a.x == b.x WITHIN 100", &reg).unwrap();
        let a1 = ev(&reg, "A", 1, 10, 7);
        let a2 = ev(&reg, "A", 2, 20, 9);
        let b = ev(&reg, "B", 3, 30, 7);
        let stacks = stacks_for(&q, &[a1, a2, Arc::clone(&b)]);
        assert_eq!(run(&q, &stacks, 1, &b, true), vec![vec![1, 3]]);
    }

    #[test]
    fn local_predicate_on_anchor_prunes_immediately() {
        let reg = registry();
        let q = parse("PATTERN SEQ(A a, B b) WHERE b.x > 100 WITHIN 100", &reg).unwrap();
        let a = ev(&reg, "A", 1, 10, 0);
        let b = ev(&reg, "B", 2, 20, 5); // fails local predicate
        let stacks = stacks_for(&q, &[a, Arc::clone(&b)]);
        let mut stats = RuntimeStats::default();
        let mut out = Vec::new();
        Constructor::new(Arc::clone(&q), ConstructOpts::default())
            .matches_with(&stacks, 1, &b, &mut stats, &mut out);
        assert!(out.is_empty());
        assert_eq!(stats.dfs_steps, 0, "anchor rejected before any descent");
    }

    #[test]
    fn cutoff_and_full_scan_agree() {
        let reg = registry();
        let q = parse("PATTERN SEQ(A a, B b, C c) WHERE a.x < c.x WITHIN 15", &reg).unwrap();
        let mut events = Vec::new();
        let mut id = 0;
        for ts in (0..60).step_by(3) {
            id += 1;
            let ty = ["A", "B", "C"][ts as usize % 3];
            events.push(ev(&reg, ty, id, ts, (ts % 7) as i64));
        }
        let stacks = stacks_for(&q, &events);
        for e in &events {
            for slot in q.slots_for_type(e.event_type()) {
                assert_eq!(
                    run(&q, &stacks, slot, e, true),
                    run(&q, &stacks, slot, e, false),
                    "cutoff changed results for anchor {} slot {slot}",
                    e.id()
                );
            }
        }
    }

    #[test]
    fn cutoff_reduces_dfs_steps() {
        let reg = registry();
        let q = parse("PATTERN SEQ(A a, B b) WITHIN 5", &reg).unwrap();
        let mut events = Vec::new();
        for i in 0..50 {
            events.push(ev(&reg, "A", i, i * 10, 0));
        }
        let b = ev(&reg, "B", 99, 251, 0);
        events.push(Arc::clone(&b));
        let stacks = stacks_for(&q, &events);
        let mut s1 = RuntimeStats::default();
        let mut s2 = RuntimeStats::default();
        let mut out = Vec::new();
        Constructor::new(
            Arc::clone(&q),
            ConstructOpts {
                window_cutoff: true,
            },
        )
        .matches_with(&stacks, 1, &b, &mut s1, &mut out);
        out.clear();
        Constructor::new(
            Arc::clone(&q),
            ConstructOpts {
                window_cutoff: false,
            },
        )
        .matches_with(&stacks, 1, &b, &mut s2, &mut out);
        assert!(s1.dfs_steps < s2.dfs_steps);
    }

    #[test]
    fn single_component_query_matches_anchor_alone() {
        let reg = registry();
        let q = parse("PATTERN SEQ(A a) WHERE a.x > 0 WITHIN 10", &reg).unwrap();
        let a = ev(&reg, "A", 1, 10, 5);
        let stacks = stacks_for(&q, &[]);
        assert_eq!(run(&q, &stacks, 0, &a, true), vec![vec![1]]);
        let bad = ev(&reg, "A", 2, 10, -5);
        assert!(run(&q, &stacks, 0, &bad, true).is_empty());
    }

    #[test]
    fn repeated_type_uses_distinct_events() {
        let reg = registry();
        let q = parse("PATTERN SEQ(A a1, A a2) WITHIN 100", &reg).unwrap();
        let a1 = ev(&reg, "A", 1, 10, 0);
        let a2 = ev(&reg, "A", 2, 20, 0);
        let stacks = stacks_for(&q, &[a1, Arc::clone(&a2)]);
        // anchored at slot 1, the only prefix candidate is the earlier A
        assert_eq!(run(&q, &stacks, 1, &a2, true), vec![vec![1, 2]]);
        // anchored at slot 0, the suffix candidate is the later A
        let a1_again = stacks[0].events()[0].clone();
        assert_eq!(run(&q, &stacks, 0, &a1_again, true), vec![vec![1, 2]]);
    }
}
