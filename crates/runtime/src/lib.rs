//! # sequin-runtime
//!
//! Physical operators for sequence pattern queries, in two flavours:
//!
//! * [`classic`] — the state-of-the-art **in-order** SASE-style pipeline
//!   (append-only active instance stacks with *recent-instance-in-previous*
//!   pointers, construction triggered by last-type arrivals, arrival-driven
//!   window purge). Correct only for timestamp-ordered input; kept both as
//!   the baseline engine and to reproduce the paper's failure analysis.
//! * the **order-insensitive** operators of Li et al. (ICDCS 2007):
//!   [`AisStack`] keeps instances sorted by occurrence timestamp so a late
//!   event is a sorted insertion; [`Constructor`] enumerates, at *every*
//!   insertion, the matches whose last-arriving constituent is the new
//!   event (exactly-once output without retraction for negation-free
//!   queries); [`purge`] computes the K-slack/punctuation-safe purge
//!   thresholds; [`NegationIndex`] supports sealed re-validation of
//!   negation regions.
//!
//! The operators are deliberately engine-agnostic: `sequin-engine` wires
//! them into complete strategies (in-order, buffered K-slack, native
//! out-of-order).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classic;
mod construct;
mod r#match;
mod negation;
mod partition;
pub mod purge;
mod stack;
mod stats;

pub use construct::{ConstructOpts, Constructor};
pub use negation::{regions, seal_deadline, NegationIndex, Region};
pub use partition::{PartitionKey, PartitionMap};
pub use r#match::{Match, MatchKey};
pub use stack::AisStack;
pub use stats::RuntimeStats;
