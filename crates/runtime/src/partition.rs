//! Hash-partitioned operator state.
//!
//! When analysis finds an equality-join chain covering every positive
//! component (e.g. correlation on an RFID tag id), all operator state can
//! be sharded by that key: stacks stay short, construction touches only
//! the relevant shard, and purge walks shards round-robin. This is the
//! partitioning optimization evaluated in experiment E11.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::Arc;

use sequin_types::Value;

/// A hashable partition key derived from an attribute [`Value`].
///
/// Floats are rejected (no sane hash/equality), which analysis tolerates:
/// an equality chain on float attributes simply disables partitioning for
/// that event at runtime (routed to the unpartitionable overflow shard).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PartitionKey {
    /// Integer key.
    Int(i64),
    /// String key.
    Str(Arc<str>),
    /// Boolean key.
    Bool(bool),
}

impl PartitionKey {
    /// Derives a key from a value; `None` for floats.
    pub fn from_value(v: &Value) -> Option<PartitionKey> {
        match v {
            Value::Int(i) => Some(PartitionKey::Int(*i)),
            Value::Str(s) => Some(PartitionKey::Str(Arc::clone(s))),
            Value::Bool(b) => Some(PartitionKey::Bool(*b)),
            Value::Float(_) => None,
        }
    }
}

/// A map from partition key to per-partition operator state, with a
/// factory for lazily materializing shards.
#[derive(Debug)]
pub struct PartitionMap<T> {
    shards: HashMap<PartitionKey, T>,
}

impl<T> PartitionMap<T> {
    /// Creates an empty map.
    pub fn new() -> PartitionMap<T> {
        PartitionMap {
            shards: HashMap::new(),
        }
    }

    /// Returns the shard for `key`, creating it with `make` on first use.
    pub fn shard_mut(&mut self, key: PartitionKey, make: impl FnOnce() -> T) -> &mut T {
        match self.shards.entry(key) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(e) => e.insert(make()),
        }
    }

    /// Returns the shard for `key` if it exists.
    pub fn shard(&self, key: &PartitionKey) -> Option<&T> {
        self.shards.get(key)
    }

    /// Number of live shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True when no shards exist.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Iterates all shards mutably (purge passes).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&PartitionKey, &mut T)> {
        self.shards.iter_mut()
    }

    /// Iterates all shards.
    pub fn iter(&self) -> impl Iterator<Item = (&PartitionKey, &T)> {
        self.shards.iter()
    }

    /// Drops shards for which `dead` returns true (fully-purged shards),
    /// returning how many were dropped.
    pub fn retain_live(&mut self, mut dead: impl FnMut(&T) -> bool) -> usize {
        let before = self.shards.len();
        self.shards.retain(|_, t| !dead(t));
        before - self.shards.len()
    }

    /// Keeps only the shards whose *key* satisfies `keep`, returning how
    /// many were dropped. Used when a restored snapshot is pruned down to
    /// the key range a worker owns.
    pub fn retain_keys(&mut self, mut keep: impl FnMut(&PartitionKey) -> bool) -> usize {
        let before = self.shards.len();
        self.shards.retain(|k, _| keep(k));
        before - self.shards.len()
    }
}

impl<T> Default for PartitionMap<T> {
    fn default() -> Self {
        PartitionMap::new()
    }
}

impl sequin_types::Encode for PartitionKey {
    fn encode(&self, w: &mut sequin_types::Writer) {
        match self {
            PartitionKey::Int(v) => {
                w.put_u8(0);
                w.put_i64(*v);
            }
            PartitionKey::Str(s) => {
                w.put_u8(1);
                w.put_str(s);
            }
            PartitionKey::Bool(b) => {
                w.put_u8(2);
                w.put_bool(*b);
            }
        }
    }
}

impl sequin_types::Decode for PartitionKey {
    fn decode(r: &mut sequin_types::Reader<'_>) -> Result<Self, sequin_types::CodecError> {
        match r.get_u8()? {
            0 => Ok(PartitionKey::Int(r.get_i64()?)),
            1 => Ok(PartitionKey::Str(Arc::from(&*r.get_str()?))),
            2 => Ok(PartitionKey::Bool(r.get_bool()?)),
            tag => Err(sequin_types::CodecError::InvalidTag {
                what: "PartitionKey",
                tag,
            }),
        }
    }
}

impl<T> PartitionMap<T> {
    /// Serializes the map with `encode_shard` for the per-shard state.
    ///
    /// Shards are written in sorted key order so the same state always
    /// yields the same bytes regardless of hash-map iteration order.
    pub fn snapshot_into(
        &self,
        w: &mut sequin_types::Writer,
        mut encode_shard: impl FnMut(&T, &mut sequin_types::Writer),
    ) {
        use sequin_types::Encode as _;
        let mut keys: Vec<&PartitionKey> = self.shards.keys().collect();
        keys.sort();
        w.put_u64(keys.len() as u64);
        for k in keys {
            k.encode(w);
            encode_shard(&self.shards[k], w);
        }
    }

    /// Rebuilds a map from bytes written by
    /// [`PartitionMap::snapshot_into`], using `decode_shard` for the
    /// per-shard state.
    pub fn restore(
        r: &mut sequin_types::Reader<'_>,
        mut decode_shard: impl FnMut(
            &mut sequin_types::Reader<'_>,
        ) -> Result<T, sequin_types::CodecError>,
    ) -> Result<PartitionMap<T>, sequin_types::CodecError> {
        use sequin_types::Decode as _;
        let n = r.get_u64()?;
        if n > r.remaining() as u64 {
            return Err(sequin_types::CodecError::BadLength);
        }
        let mut map = PartitionMap::new();
        for _ in 0..n {
            let key = PartitionKey::decode(r)?;
            let shard = decode_shard(r)?;
            map.shards.insert(key, shard);
        }
        Ok(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_from_value() {
        assert_eq!(
            PartitionKey::from_value(&Value::Int(3)),
            Some(PartitionKey::Int(3))
        );
        assert_eq!(
            PartitionKey::from_value(&Value::str("t")),
            Some(PartitionKey::Str(Arc::from("t")))
        );
        assert_eq!(
            PartitionKey::from_value(&Value::Bool(true)),
            Some(PartitionKey::Bool(true))
        );
        assert_eq!(PartitionKey::from_value(&Value::Float(1.0)), None);
    }

    #[test]
    fn shard_lazily_materialized() {
        let mut m: PartitionMap<Vec<u32>> = PartitionMap::new();
        assert!(m.is_empty());
        m.shard_mut(PartitionKey::Int(1), Vec::new).push(10);
        m.shard_mut(PartitionKey::Int(1), Vec::new).push(20);
        m.shard_mut(PartitionKey::Int(2), Vec::new).push(30);
        assert_eq!(m.len(), 2);
        assert_eq!(m.shard(&PartitionKey::Int(1)), Some(&vec![10, 20]));
        assert_eq!(m.shard(&PartitionKey::Int(9)), None);
    }

    #[test]
    fn retain_live_drops_dead_shards() {
        let mut m: PartitionMap<Vec<u32>> = PartitionMap::new();
        m.shard_mut(PartitionKey::Int(1), Vec::new).push(1);
        m.shard_mut(PartitionKey::Int(2), Vec::new);
        assert_eq!(m.retain_live(|v| v.is_empty()), 1);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn retain_keys_prunes_by_key() {
        let mut m: PartitionMap<u32> = PartitionMap::new();
        *m.shard_mut(PartitionKey::Int(1), || 0) = 1;
        *m.shard_mut(PartitionKey::Int(2), || 0) = 2;
        *m.shard_mut(PartitionKey::Int(3), || 0) = 3;
        assert_eq!(m.retain_keys(|k| *k != PartitionKey::Int(2)), 1);
        assert_eq!(m.len(), 2);
        assert_eq!(m.shard(&PartitionKey::Int(2)), None);
        assert_eq!(m.shard(&PartitionKey::Int(3)), Some(&3));
    }

    #[test]
    fn iteration() {
        let mut m: PartitionMap<u32> = PartitionMap::new();
        *m.shard_mut(PartitionKey::Bool(false), || 0) += 5;
        for (_, v) in m.iter_mut() {
            *v += 1;
        }
        let total: u32 = m.iter().map(|(_, v)| *v).sum();
        assert_eq!(total, 6);
    }
}
