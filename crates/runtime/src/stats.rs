//! Operator-level cost counters.

use std::ops::AddAssign;

/// Counters accumulated by the physical operators, used by the evaluation
/// harness to attribute CPU cost (sequence scan vs. construction vs. purge)
/// and to validate the optimization ablations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Events inserted into stacks (sequence-scan insertions).
    pub insertions: u64,
    /// Insertions that landed somewhere other than the stack top (i.e.
    /// physically out-of-order arrivals absorbed by sorted insertion).
    pub ooo_insertions: u64,
    /// Candidate events visited during construction DFS.
    pub dfs_steps: u64,
    /// Predicate evaluations attempted (including undecided ones).
    pub predicate_evals: u64,
    /// Complete matches constructed (before negation filtering).
    pub matches_constructed: u64,
    /// Matches discarded by a negation check.
    pub negated_matches: u64,
    /// Instances removed by purge.
    pub purged: u64,
    /// Purge passes executed.
    pub purge_runs: u64,
    /// Events dropped because they violated the disorder bound (arrived
    /// after state they needed was already purged).
    pub late_drops: u64,
}

impl RuntimeStats {
    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        *self = RuntimeStats::default();
    }
}

impl AddAssign for RuntimeStats {
    fn add_assign(&mut self, rhs: RuntimeStats) {
        self.insertions += rhs.insertions;
        self.ooo_insertions += rhs.ooo_insertions;
        self.dfs_steps += rhs.dfs_steps;
        self.predicate_evals += rhs.predicate_evals;
        self.matches_constructed += rhs.matches_constructed;
        self.negated_matches += rhs.negated_matches;
        self.purged += rhs.purged;
        self.purge_runs += rhs.purge_runs;
        self.late_drops += rhs.late_drops;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_sums_fields() {
        let mut a = RuntimeStats { insertions: 1, dfs_steps: 2, ..Default::default() };
        let b = RuntimeStats { insertions: 10, purged: 5, ..Default::default() };
        a += b;
        assert_eq!(a.insertions, 11);
        assert_eq!(a.dfs_steps, 2);
        assert_eq!(a.purged, 5);
    }

    #[test]
    fn reset_zeroes() {
        let mut a = RuntimeStats { late_drops: 3, ..Default::default() };
        a.reset();
        assert_eq!(a, RuntimeStats::default());
    }
}
