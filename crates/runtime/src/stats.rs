//! Operator-level cost counters.

use std::ops::AddAssign;

use sequin_types::codec::{CodecError, Decode, Encode, Reader, Writer};

/// Counters accumulated by the physical operators, used by the evaluation
/// harness to attribute CPU cost (sequence scan vs. construction vs. purge)
/// and to validate the optimization ablations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Events inserted into stacks (sequence-scan insertions).
    pub insertions: u64,
    /// Insertions that landed somewhere other than the stack top (i.e.
    /// physically out-of-order arrivals absorbed by sorted insertion).
    pub ooo_insertions: u64,
    /// Candidate events visited during construction DFS.
    pub dfs_steps: u64,
    /// Predicate evaluations attempted (including undecided ones).
    pub predicate_evals: u64,
    /// Complete matches constructed (before negation filtering).
    pub matches_constructed: u64,
    /// Matches discarded by a negation check.
    pub negated_matches: u64,
    /// Instances removed by purge.
    pub purged: u64,
    /// Purge passes executed.
    pub purge_runs: u64,
    /// Events dropped because they violated the disorder bound (arrived
    /// after state they needed was already purged).
    pub late_drops: u64,
    /// Checkpoints successfully written by a `Checkpointer`.
    pub checkpoints_written: u64,
    /// Checkpoints rejected at restore time (corruption, version skew).
    pub checkpoints_rejected: u64,
    /// Outputs suppressed during post-restore replay because the dedup
    /// log showed they were already delivered (exactly-once recovery).
    pub replayed_suppressed: u64,
    /// Events accepted for positive-pattern processing by this evaluator
    /// (after shard routing; a sharded run sums the disjoint per-shard
    /// values).
    pub events_routed: u64,
    /// Deepest AIS stack observed after any insertion. Merged with `max`,
    /// not `+`, by [`AddAssign`]: depths from different shards or queries
    /// do not add up.
    pub max_stack_depth: u64,
    /// High-water mark of the sharded merge buffer (outputs held while
    /// aligning per-shard phases of a single arrival). Merged with `max`.
    pub merge_buffer_peak: u64,
}

impl RuntimeStats {
    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        *self = RuntimeStats::default();
    }
}

impl AddAssign for RuntimeStats {
    fn add_assign(&mut self, rhs: RuntimeStats) {
        self.insertions += rhs.insertions;
        self.ooo_insertions += rhs.ooo_insertions;
        self.dfs_steps += rhs.dfs_steps;
        self.predicate_evals += rhs.predicate_evals;
        self.matches_constructed += rhs.matches_constructed;
        self.negated_matches += rhs.negated_matches;
        self.purged += rhs.purged;
        self.purge_runs += rhs.purge_runs;
        self.late_drops += rhs.late_drops;
        self.checkpoints_written += rhs.checkpoints_written;
        self.checkpoints_rejected += rhs.checkpoints_rejected;
        self.replayed_suppressed += rhs.replayed_suppressed;
        self.events_routed += rhs.events_routed;
        // gauges, not flows: combining two evaluators keeps the larger peak
        self.max_stack_depth = self.max_stack_depth.max(rhs.max_stack_depth);
        self.merge_buffer_peak = self.merge_buffer_peak.max(rhs.merge_buffer_peak);
    }
}

impl RuntimeStats {
    /// Field-order list used by the codec and the metrics tables; keep in
    /// sync with the struct definition.
    pub fn as_pairs(&self) -> [(&'static str, u64); 15] {
        [
            ("insertions", self.insertions),
            ("ooo_insertions", self.ooo_insertions),
            ("dfs_steps", self.dfs_steps),
            ("predicate_evals", self.predicate_evals),
            ("matches_constructed", self.matches_constructed),
            ("negated_matches", self.negated_matches),
            ("purged", self.purged),
            ("purge_runs", self.purge_runs),
            ("late_drops", self.late_drops),
            ("checkpoints_written", self.checkpoints_written),
            ("checkpoints_rejected", self.checkpoints_rejected),
            ("replayed_suppressed", self.replayed_suppressed),
            ("events_routed", self.events_routed),
            ("max_stack_depth", self.max_stack_depth),
            ("merge_buffer_peak", self.merge_buffer_peak),
        ]
    }
}

impl Encode for RuntimeStats {
    fn encode(&self, w: &mut Writer) {
        for (_, v) in self.as_pairs() {
            w.put_u64(v);
        }
    }
}

impl Decode for RuntimeStats {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(RuntimeStats {
            insertions: r.get_u64()?,
            ooo_insertions: r.get_u64()?,
            dfs_steps: r.get_u64()?,
            predicate_evals: r.get_u64()?,
            matches_constructed: r.get_u64()?,
            negated_matches: r.get_u64()?,
            purged: r.get_u64()?,
            purge_runs: r.get_u64()?,
            late_drops: r.get_u64()?,
            checkpoints_written: r.get_u64()?,
            checkpoints_rejected: r.get_u64()?,
            replayed_suppressed: r.get_u64()?,
            events_routed: r.get_u64()?,
            max_stack_depth: r.get_u64()?,
            merge_buffer_peak: r.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_sums_fields() {
        let mut a = RuntimeStats {
            insertions: 1,
            dfs_steps: 2,
            ..Default::default()
        };
        let b = RuntimeStats {
            insertions: 10,
            purged: 5,
            checkpoints_written: 2,
            checkpoints_rejected: 1,
            replayed_suppressed: 4,
            events_routed: 6,
            ..Default::default()
        };
        a += b;
        assert_eq!(a.insertions, 11);
        assert_eq!(a.dfs_steps, 2);
        assert_eq!(a.purged, 5);
        assert_eq!(a.checkpoints_written, 2);
        assert_eq!(a.checkpoints_rejected, 1);
        assert_eq!(a.replayed_suppressed, 4);
        assert_eq!(a.events_routed, 6);
    }

    #[test]
    fn add_assign_takes_max_of_gauges() {
        let mut a = RuntimeStats {
            max_stack_depth: 7,
            merge_buffer_peak: 2,
            ..Default::default()
        };
        a += RuntimeStats {
            max_stack_depth: 3,
            merge_buffer_peak: 9,
            ..Default::default()
        };
        assert_eq!(a.max_stack_depth, 7);
        assert_eq!(a.merge_buffer_peak, 9);
    }

    #[test]
    fn codec_round_trip_covers_every_field() {
        // fill each counter with a distinct value so a field-order bug in
        // either direction cannot cancel out
        let s = RuntimeStats {
            insertions: 1,
            ooo_insertions: 2,
            dfs_steps: 3,
            predicate_evals: 4,
            matches_constructed: 5,
            negated_matches: 6,
            purged: 7,
            purge_runs: 8,
            late_drops: 9,
            checkpoints_written: 10,
            checkpoints_rejected: 11,
            replayed_suppressed: 12,
            events_routed: 13,
            max_stack_depth: 14,
            merge_buffer_peak: 15,
        };
        let mut w = Writer::new();
        s.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(RuntimeStats::decode(&mut r).unwrap(), s);
        r.finish().unwrap();
        // the pair view must agree with the struct values 1..=15
        let pairs = s.as_pairs();
        assert_eq!(pairs.len(), 15);
        for (i, (_, v)) in pairs.iter().enumerate() {
            assert_eq!(*v, i as u64 + 1);
        }
    }

    /// Which `as_pairs` entries are peak gauges (max-merged); everything
    /// else is a flow counter (summed).
    const GAUGES: [&str; 2] = ["max_stack_depth", "merge_buffer_peak"];

    fn random_stats(rng: &mut sequin_prng::Rng) -> RuntimeStats {
        let mut w = Writer::new();
        for _ in 0..15 {
            // small enough that sums over 8 shards cannot overflow
            w.put_u64(rng.gen_range(0..1u64 << 40));
        }
        let bytes = w.into_bytes();
        RuntimeStats::decode(&mut Reader::new(&bytes)).unwrap()
    }

    /// Property: merging per-shard stats via `+=` sums every flow counter
    /// and max-merges every peak gauge, independent of merge order and of
    /// how the shards are grouped (associativity) — the guarantees the
    /// sharded engine and the metrics registry rely on when they fold
    /// worker stats into one aggregate.
    #[test]
    fn add_assign_merge_properties_hold_for_random_shard_sets() {
        let mut rng = sequin_prng::Rng::seed_from_u64(0x5e9_0b5);
        for round in 0..200 {
            let shards: Vec<RuntimeStats> = (0..rng.gen_range(1..=8usize))
                .map(|_| random_stats(&mut rng))
                .collect();

            // left fold
            let mut merged = RuntimeStats::default();
            for s in &shards {
                merged += *s;
            }

            // field-by-field oracle over the pair view
            for (ix, (name, got)) in merged.as_pairs().iter().enumerate() {
                let want = if GAUGES.contains(name) {
                    shards.iter().map(|s| s.as_pairs()[ix].1).max().unwrap()
                } else {
                    shards.iter().map(|s| s.as_pairs()[ix].1).sum()
                };
                assert_eq!(*got, want, "round {round}: field {name}");
            }

            // order independence: reversed fold agrees
            let mut rev = RuntimeStats::default();
            for s in shards.iter().rev() {
                rev += *s;
            }
            assert_eq!(rev, merged, "round {round}: merge is order-independent");

            // associativity: split at a random point, merge halves, then
            // merge the partials — regrouping shards must not change totals
            let cut = rng.gen_range(0..=shards.len());
            let (left, right) = shards.split_at(cut);
            let mut a = RuntimeStats::default();
            for s in left {
                a += *s;
            }
            let mut b = RuntimeStats::default();
            for s in right {
                b += *s;
            }
            a += b;
            assert_eq!(a, merged, "round {round}: merge is associative (cut {cut})");

            // identity: merging the zero stats changes nothing
            let mut with_zero = merged;
            with_zero += RuntimeStats::default();
            assert_eq!(with_zero, merged, "round {round}: zero is the identity");
        }
    }

    #[test]
    fn reset_zeroes() {
        let mut a = RuntimeStats {
            late_drops: 3,
            ..Default::default()
        };
        a.reset();
        assert_eq!(a, RuntimeStats::default());
    }
}
