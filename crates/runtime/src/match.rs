//! Emitted pattern matches.

use std::fmt;

use sequin_query::Query;
use sequin_types::{EventId, EventRef, Timestamp, Value};

/// The identity of a match: the event ids of its positive components, in
/// positive order. Two emissions with equal keys denote the same match
/// (used for deduplication in tests and for pairing `Insert`/`Retract`
/// items under the speculative disorder policy).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MatchKey(Vec<EventId>);

impl MatchKey {
    /// Builds a key from positive-order events.
    pub fn from_events(events: &[EventRef]) -> MatchKey {
        MatchKey(events.iter().map(|e| e.id()).collect())
    }

    /// The component event ids, in positive order.
    pub fn event_ids(&self) -> &[EventId] {
        &self.0
    }
}

impl fmt::Display for MatchKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, id) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{id}")?;
        }
        write!(f, "]")
    }
}

/// A complete pattern match: the positive-component events (in positive
/// order) plus the projected output tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct Match {
    events: Vec<EventRef>,
    output: Vec<Value>,
}

impl Match {
    /// Builds a match from positive-order events, evaluating the query's
    /// projections.
    pub fn new(query: &Query, events: Vec<EventRef>) -> Match {
        let binding = query.binding_from_positives(&events);
        let output = query.project(&binding);
        Match { events, output }
    }

    /// The matched events, in positive order.
    pub fn events(&self) -> &[EventRef] {
        &self.events
    }

    /// The projected output tuple (`RETURN` clause, or event ids).
    pub fn output(&self) -> &[Value] {
        &self.output
    }

    /// The match identity key.
    pub fn key(&self) -> MatchKey {
        MatchKey::from_events(&self.events)
    }

    /// Occurrence timestamp of the first positive component.
    pub fn first_ts(&self) -> Timestamp {
        self.events
            .first()
            .map(|e| e.ts())
            .unwrap_or(Timestamp::MIN)
    }

    /// Occurrence timestamp of the last positive component.
    pub fn last_ts(&self) -> Timestamp {
        self.events.last().map(|e| e.ts()).unwrap_or(Timestamp::MIN)
    }

    /// The latest *arrival* among the constituents — the moment the match
    /// became physically constructible. Latency metrics measure from here.
    pub fn completion_arrival(&self) -> sequin_types::ArrivalSeq {
        self.events
            .iter()
            .map(|e| e.arrival())
            .max()
            .unwrap_or_default()
    }
}

impl fmt::Display for Match {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "match{} -> (", self.key())?;
        for (i, v) in self.output.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl sequin_types::Encode for MatchKey {
    fn encode(&self, w: &mut sequin_types::Writer) {
        self.0.encode(w);
    }
}

impl sequin_types::Decode for MatchKey {
    fn decode(r: &mut sequin_types::Reader<'_>) -> Result<Self, sequin_types::CodecError> {
        Ok(MatchKey(Vec::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sequin_query::parse;
    use sequin_types::{ArrivalSeq, Event, Timestamp, TypeRegistry, ValueKind};
    use std::sync::Arc;

    fn setup() -> (TypeRegistry, Vec<EventRef>) {
        let mut reg = TypeRegistry::new();
        let a = reg.declare("A", &[("x", ValueKind::Int)]).unwrap();
        let b = reg.declare("B", &[("x", ValueKind::Int)]).unwrap();
        let e1 = Arc::new(
            Event::builder(a, Timestamp::new(1))
                .id(EventId::new(1))
                .attr(Value::Int(10))
                .build()
                .with_arrival(ArrivalSeq::new(5)),
        );
        let e2 = Arc::new(
            Event::builder(b, Timestamp::new(2))
                .id(EventId::new(2))
                .attr(Value::Int(20))
                .build()
                .with_arrival(ArrivalSeq::new(3)),
        );
        (reg, vec![e1, e2])
    }

    #[test]
    fn match_with_projection() {
        let (reg, events) = setup();
        let q = parse("PATTERN SEQ(A a, B b) WITHIN 10 RETURN b.x, a.ts", &reg).unwrap();
        let m = Match::new(&q, events);
        assert_eq!(m.output(), &[Value::Int(20), Value::Int(1)]);
        assert_eq!(m.first_ts(), Timestamp::new(1));
        assert_eq!(m.last_ts(), Timestamp::new(2));
        assert_eq!(m.completion_arrival(), ArrivalSeq::new(5));
    }

    #[test]
    fn default_projection_is_event_ids() {
        let (reg, events) = setup();
        let q = parse("PATTERN SEQ(A a, B b) WITHIN 10", &reg).unwrap();
        let m = Match::new(&q, events);
        assert_eq!(m.output(), &[Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn keys_equal_iff_same_events() {
        let (reg, events) = setup();
        let q = parse("PATTERN SEQ(A a, B b) WITHIN 10", &reg).unwrap();
        let m1 = Match::new(&q, events.clone());
        let m2 = Match::new(&q, events);
        assert_eq!(m1.key(), m2.key());
        assert_eq!(m1.key().event_ids(), &[EventId::new(1), EventId::new(2)]);
    }

    #[test]
    fn display_nonempty() {
        let (reg, events) = setup();
        let q = parse("PATTERN SEQ(A a, B b) WITHIN 10", &reg).unwrap();
        let m = Match::new(&q, events);
        assert!(m.to_string().contains("match"));
        assert!(m.key().to_string().starts_with('['));
    }
}
