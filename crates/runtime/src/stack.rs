//! Order-insensitive active instance stacks.

use sequin_types::{EventId, EventRef, Timestamp};

/// An **active instance stack** that tolerates out-of-order insertion.
///
/// The classic SASE stack is append-only and relies on arrival order for
/// its "everything below me is earlier" invariant. This variant instead
/// maintains the invariant *explicitly*: instances are kept sorted by
/// `(occurrence timestamp, event id)`, so a late event is a binary-searched
/// insertion at its proper position and the predecessor set of any instance
/// is exactly a prefix of the previous stack — recoverable positionally,
/// with no stored pointers to fix up.
///
/// Duplicate event ids are rejected (idempotent re-delivery).
#[derive(Debug, Clone, Default)]
pub struct AisStack {
    events: Vec<EventRef>,
}

impl AisStack {
    /// Creates an empty stack.
    pub fn new() -> AisStack {
        AisStack::default()
    }

    /// Number of live instances.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the stack holds no instances.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The instances, sorted by `(ts, id)`.
    pub fn events(&self) -> &[EventRef] {
        &self.events
    }

    /// The instance at `ix`.
    ///
    /// # Panics
    ///
    /// Panics if `ix` is out of bounds.
    pub fn get(&self, ix: usize) -> &EventRef {
        &self.events[ix]
    }

    fn sort_key(e: &EventRef) -> (Timestamp, EventId) {
        (e.ts(), e.id())
    }

    /// Inserts an event at its sorted position, returning the position, or
    /// `None` if an event with the same `(ts, id)` is already present.
    ///
    /// In-order arrivals hit the append fast path ( O(1) ); a late event
    /// costs a binary search plus a `memmove` of the tail — this is the
    /// paper's out-of-order sequence-scan insertion.
    pub fn insert(&mut self, event: EventRef) -> Option<usize> {
        let key = Self::sort_key(&event);
        if let Some(last) = self.events.last() {
            if Self::sort_key(last) < key {
                self.events.push(event);
                return Some(self.events.len() - 1);
            }
        } else {
            self.events.push(event);
            return Some(0);
        }
        match self.events.binary_search_by_key(&key, Self::sort_key) {
            Ok(_) => None,
            Err(pos) => {
                self.events.insert(pos, event);
                Some(pos)
            }
        }
    }

    /// Number of instances with timestamp strictly less than `ts` — the
    /// positional *recent instance in previous stack* bound: instances
    /// `0..first_at_or_after(ts)` of the previous stack are exactly the
    /// candidate predecessors of an instance with timestamp `ts`.
    pub fn first_at_or_after(&self, ts: Timestamp) -> usize {
        self.events.partition_point(|e| e.ts() < ts)
    }

    /// Index of the first instance with timestamp strictly greater than
    /// `ts` (the start of the candidate *successor* range).
    pub fn first_after(&self, ts: Timestamp) -> usize {
        self.events.partition_point(|e| e.ts() <= ts)
    }

    /// The sub-slice of instances with `lo < ts < hi` (both exclusive) —
    /// the window-trimmed candidate range used by the early-cut-off
    /// construction optimization.
    pub fn between_exclusive(&self, lo: Timestamp, hi: Timestamp) -> &[EventRef] {
        let start = self.first_after(lo);
        let end = self.first_at_or_after(hi);
        if start >= end {
            &[]
        } else {
            &self.events[start..end]
        }
    }

    /// The sub-slice of instances with `lo <= ts < hi` (inclusive start,
    /// exclusive end).
    pub fn range(&self, lo: Timestamp, hi: Timestamp) -> &[EventRef] {
        let start = self.first_at_or_after(lo);
        let end = self.first_at_or_after(hi);
        if start >= end {
            &[]
        } else {
            &self.events[start..end]
        }
    }

    /// Removes every instance with timestamp strictly below `threshold`,
    /// returning how many were purged. Instances are a sorted prefix, so
    /// this is a single drain.
    pub fn purge_before(&mut self, threshold: Timestamp) -> usize {
        let k = self.first_at_or_after(threshold);
        self.events.drain(..k);
        k
    }

    /// True if an event with this `(ts, id)` is present.
    pub fn contains(&self, ts: Timestamp, id: EventId) -> bool {
        self.events
            .binary_search_by_key(&(ts, id), Self::sort_key)
            .is_ok()
    }

    /// Iterates the instances in timestamp order.
    pub fn iter(&self) -> impl Iterator<Item = &EventRef> {
        self.events.iter()
    }

    /// Checks the sortedness invariant (used by tests and debug assertions).
    pub fn is_sorted(&self) -> bool {
        self.events
            .windows(2)
            .all(|w| Self::sort_key(&w[0]) < Self::sort_key(&w[1]))
    }
}

impl sequin_types::Encode for AisStack {
    fn encode(&self, w: &mut sequin_types::Writer) {
        self.events.encode(w);
    }
}

impl sequin_types::Decode for AisStack {
    fn decode(r: &mut sequin_types::Reader<'_>) -> Result<Self, sequin_types::CodecError> {
        let events: Vec<EventRef> = Vec::decode(r)?;
        let mut stack = AisStack::new();
        for e in events {
            // re-inserting (rather than trusting the byte order) keeps the
            // sorted-and-deduped invariant unconditionally; snapshots are
            // written in order, so this is the O(1) append fast path
            stack.insert(e);
        }
        Ok(stack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sequin_types::{Event, EventTypeId};
    use std::sync::Arc;

    fn ev(id: u64, ts: u64) -> EventRef {
        Arc::new(
            Event::builder(EventTypeId::from_index(0), Timestamp::new(ts))
                .id(EventId::new(id))
                .build(),
        )
    }

    #[test]
    fn in_order_appends() {
        let mut s = AisStack::new();
        assert_eq!(s.insert(ev(1, 10)), Some(0));
        assert_eq!(s.insert(ev(2, 20)), Some(1));
        assert_eq!(s.insert(ev(3, 30)), Some(2));
        assert!(s.is_sorted());
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn late_event_inserts_at_sorted_position() {
        let mut s = AisStack::new();
        s.insert(ev(1, 10));
        s.insert(ev(3, 30));
        assert_eq!(s.insert(ev(2, 20)), Some(1));
        assert!(s.is_sorted());
        let ts: Vec<u64> = s.iter().map(|e| e.ts().ticks()).collect();
        assert_eq!(ts, [10, 20, 30]);
    }

    #[test]
    fn duplicate_rejected() {
        let mut s = AisStack::new();
        s.insert(ev(1, 10));
        assert_eq!(s.insert(ev(1, 10)), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn equal_ts_distinct_ids_ordered_by_id() {
        let mut s = AisStack::new();
        s.insert(ev(5, 10));
        s.insert(ev(2, 10));
        assert!(s.is_sorted());
        assert_eq!(s.get(0).id(), EventId::new(2));
        assert!(s.contains(Timestamp::new(10), EventId::new(5)));
        assert!(!s.contains(Timestamp::new(10), EventId::new(9)));
    }

    #[test]
    fn positional_rip_bounds() {
        let mut s = AisStack::new();
        for (id, ts) in [(1, 10), (2, 20), (3, 30)] {
            s.insert(ev(id, ts));
        }
        assert_eq!(s.first_at_or_after(Timestamp::new(20)), 1);
        assert_eq!(s.first_at_or_after(Timestamp::new(21)), 2);
        assert_eq!(s.first_at_or_after(Timestamp::new(5)), 0);
        assert_eq!(s.first_after(Timestamp::new(20)), 2);
        assert_eq!(s.first_after(Timestamp::new(30)), 3);
    }

    #[test]
    fn between_exclusive_trims_both_ends() {
        let mut s = AisStack::new();
        for (id, ts) in [(1, 10), (2, 20), (3, 30), (4, 40)] {
            s.insert(ev(id, ts));
        }
        let mid: Vec<u64> = s
            .between_exclusive(Timestamp::new(10), Timestamp::new(40))
            .iter()
            .map(|e| e.ts().ticks())
            .collect();
        assert_eq!(mid, [20, 30]);
        assert!(s
            .between_exclusive(Timestamp::new(20), Timestamp::new(20))
            .is_empty());
        assert!(s
            .between_exclusive(Timestamp::new(40), Timestamp::new(10))
            .is_empty());
    }

    #[test]
    fn purge_removes_strict_prefix() {
        let mut s = AisStack::new();
        for (id, ts) in [(1, 10), (2, 20), (3, 30)] {
            s.insert(ev(id, ts));
        }
        assert_eq!(s.purge_before(Timestamp::new(20)), 1);
        assert_eq!(s.len(), 2);
        // threshold equal to an instance ts keeps it
        assert_eq!(s.purge_before(Timestamp::new(20)), 0);
        assert_eq!(s.purge_before(Timestamp::new(100)), 2);
        assert!(s.is_empty());
    }

    #[test]
    fn purge_on_empty_is_noop() {
        let mut s = AisStack::new();
        assert_eq!(s.purge_before(Timestamp::new(5)), 0);
    }
}
