//! Real-time intrusion detection over disordered telemetry.
//!
//! Login telemetry from many collectors arrives with network jitter; the
//! signature is FAIL, FAIL, OK, PRIV_ESC for one user within a short
//! window. The example shows the latency cost of the standard K-slack
//! reorder-buffer fix versus the native engine: both are correct, but the
//! buffered engine only raises alerts after the full slack elapses.
//!
//! ```sh
//! cargo run --example intrusion_detection
//! ```

use sequin::engine::{make_engine, EngineConfig, Strategy};
use sequin::metrics::run_engine;
use sequin::netsim::{delay_shuffle, measure_disorder};
use sequin::types::Duration;
use sequin::workload::Intrusion;

fn main() {
    let telemetry = Intrusion::new();
    let history = telemetry.generate(20_000, 200, 25, 99);
    println!(
        "generated {} telemetry events (25 injected attacks)",
        history.len()
    );

    // collectors add jitter: 15% of events are late by up to 120 ticks
    let stream = delay_shuffle(&history, 0.15, 120, 5);
    let disorder = measure_disorder(&stream);
    println!(
        "disorder at the SIEM: {:.1}% late, max lateness {}\n",
        disorder.late_fraction * 100.0,
        disorder.max_lateness
    );

    let query = telemetry.brute_force_query(60);
    println!("query: {query}\n");
    let k = disorder.max_lateness.ticks().max(1);

    println!(
        "{:>16}  {:>7}  {:>14}  {:>13}  {:>10}",
        "strategy", "alerts", "mean delay", "p99 delay", "ev/s"
    );
    for strategy in [Strategy::Buffered, Strategy::Native] {
        let mut engine = make_engine(
            strategy,
            query.clone(),
            EngineConfig::with_k(Duration::new(k)),
        );
        let report = run_engine(engine.as_mut(), &stream, 64);
        println!(
            "{:>16}  {:>7}  {:>10.1} evs  {:>9} evs  {:>10.0}",
            strategy.to_string(),
            report.net_matches(),
            report.arrival_latency.mean(),
            report.arrival_latency.p99(),
            report.throughput_eps,
        );
    }
    println!(
        "\nboth engines raise the same alerts; the buffered engine holds every\n\
         alert until the K={k} slack passes, the native engine fires the moment\n\
         the final event of the signature arrives."
    );
}
