//! Networked quickstart: boot a TCP server, connect a client, stream a
//! disordered workload over loopback, and collect the matches.
//!
//! ```sh
//! cargo run --example networked_quickstart
//! ```

use std::sync::Arc;

use sequin::engine::{EngineConfig, Strategy};
use sequin::netsim::delay_shuffle;
use sequin::server::{Client, CoreConfig, Server, ServerConfig};
use sequin::types::{Duration, StreamItem};
use sequin::workload::{Synthetic, SyntheticConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. a workload supplies the schema and an event history; shuffle it
    //    so 30% of events arrive late (up to 20 ticks)
    let workload = Synthetic::new(SyntheticConfig::default());
    let registry = Arc::clone(workload.registry());
    let history = workload.generate(2_000, 42);
    let stream = delay_shuffle(&history, 0.3, 20, 42);

    // 2. boot the server: native out-of-order engine, K = 40 ticks, one
    //    engine thread behind a bounded queue
    let core = CoreConfig::new(
        Arc::clone(&registry),
        Strategy::Native,
        EngineConfig::with_k(Duration::new(40)),
    );
    let mut server = Server::start(ServerConfig::new(core))?;
    let addr = server.listen("127.0.0.1:0")?; // ephemeral port
    println!("server listening on {addr}");

    // 3. connect, negotiate the schema fingerprint, subscribe a query
    let mut client = Client::connect(&addr.to_string())?;
    let (resume_from, _) = client.hello(registry.fingerprint(), "quickstart")?;
    assert_eq!(resume_from, 0, "fresh server starts at item 0");
    let query_id = client.subscribe("PATTERN SEQ(T0 a, T1 b) WHERE a.tag == b.tag WITHIN 50")?;
    println!("subscribed as query {query_id}");

    // 4. ship the disordered stream in batches, then drain: the server
    //    flushes held state and acks only after every output frame
    let events: Vec<_> = stream
        .iter()
        .filter_map(|item| match item {
            StreamItem::Event(e) => Some(e.clone()),
            StreamItem::Punctuation(_) => None,
        })
        .collect();
    for chunk in events.chunks(64) {
        client.send_batch(chunk)?;
    }
    client.drain()?;

    // 5. matches streamed back as OUTPUT frames, in engine order
    let outputs = client.take_outputs();
    println!("received {} matches over the wire", outputs.len());
    for output in outputs.iter().take(3) {
        let ids: Vec<String> = output.events.iter().map(|e| e.id().to_string()).collect();
        println!(
            "  -> query {} matched events [{}] at emit seq {}",
            output.query_id,
            ids.join(", "),
            output.emit_seq
        );
    }

    let (server_stats, engine_stats) = client.stats()?;
    println!(
        "server: {} events ingested in {} batches; engine: {} insertions",
        server_stats.events_ingested, server_stats.batches_ingested, engine_stats.insertions
    );

    client.bye();
    server.shutdown();
    Ok(())
}
