//! Quickstart: declare types, write a query, feed an out-of-order stream.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use sequin::engine::{Engine, EngineConfig, NativeEngine};
use sequin::query::parse;
use sequin::types::{
    Duration, Event, EventId, StreamItem, Timestamp, TypeRegistry, Value, ValueKind,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. declare the event types your stream carries
    let mut registry = TypeRegistry::new();
    registry.declare(
        "ORDER",
        &[("customer", ValueKind::Int), ("amount", ValueKind::Int)],
    )?;
    registry.declare(
        "PAYMENT",
        &[("customer", ValueKind::Int), ("amount", ValueKind::Int)],
    )?;

    // 2. write a sequence pattern query over those types
    let query = parse(
        "PATTERN SEQ(ORDER o, PAYMENT p) \
         WHERE o.customer == p.customer AND p.amount >= o.amount \
         WITHIN 100 \
         RETURN o.customer, o.amount",
        &registry,
    )?;
    println!("query: {query}");

    // 3. build the paper's native out-of-order engine with a disorder
    //    bound K = 50 ticks
    let mut engine = NativeEngine::new(query, EngineConfig::with_k(Duration::new(50)));

    // 4. feed arrivals — note the PAYMENT (ts=30) arrives BEFORE its ORDER
    //    (ts=10); a classic in-order engine would silently miss this match
    let order_ty = registry.lookup("ORDER").expect("declared above");
    let payment_ty = registry.lookup("PAYMENT").expect("declared above");
    let mk = |id: u64, ty, ts: u64, customer: i64, amount: i64| {
        StreamItem::Event(Arc::new(
            Event::builder(ty, Timestamp::new(ts))
                .id(EventId::new(id))
                .attr(Value::Int(customer))
                .attr(Value::Int(amount))
                .build(),
        ))
    };
    let arrivals = vec![
        mk(1, payment_ty, 30, 7, 120), // late-arriving context: order not seen yet
        mk(2, order_ty, 10, 7, 100),   // the ORDER arrives out of order
        mk(3, order_ty, 40, 8, 50),
        mk(4, payment_ty, 60, 8, 20), // underpays: predicate rejects
    ];

    for item in &arrivals {
        for output in engine.ingest(item) {
            println!("  -> {output}");
        }
    }
    for output in engine.finish() {
        println!("  -> (at end of stream) {output}");
    }

    println!(
        "stats: {} insertions, {} DFS steps, {} matches",
        engine.stats().insertions,
        engine.stats().dfs_steps,
        engine.stats().matches_constructed
    );
    Ok(())
}
