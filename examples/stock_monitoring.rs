//! Stock-tick monitoring: immediate signals, speculative retraction, and
//! punctuation-sealed conservative alerts.
//!
//! A momentum desk wants signals with minimal delay. Four queries show
//! the disorder-policy spectrum:
//!
//! 1. rising-price streaks (no negation) — fired the instant the third
//!    tick arrives, even when ticks arrive out of order;
//! 2. uncorrected spikes (trailing negation), **speculative**: fired
//!    optimistically, retracted when a late correction tick lands;
//! 3. the same spikes, **conservative** with punctuation-driven sealing:
//!    only confirmed alerts, a little later;
//! 4. the same spikes, **adaptive slack**: the engine learns a lateness
//!    bound from the stream and holds alerts only that long.
//!
//! ```sh
//! cargo run --example stock_monitoring
//! ```

use sequin::engine::{
    DisorderPolicy, Engine, EngineConfig, NativeEngine, OutputKind, WatermarkSource,
};
use sequin::netsim::{delay_shuffle, punctuate};
use sequin::types::Duration;
use sequin::workload::Stock;

fn main() {
    let market = Stock::new();
    let ticks = market.generate(30_000, 8, 11);
    let stream = delay_shuffle(&ticks, 0.1, 40, 3);
    println!(
        "streaming {} ticks over 8 symbols (10% late, delay <= 40)\n",
        ticks.len()
    );

    // --- 1. rising streaks: negation-free, zero-latency emission ---------
    let rising = market.rising_query(20);
    let mut engine = NativeEngine::new(rising, EngineConfig::with_k(Duration::new(40)));
    let mut signals = 0usize;
    for item in &stream {
        signals += engine.ingest(item).len();
    }
    signals += engine.finish().len();
    println!("rising-streak signals: {signals} (all emitted at completion, no delay)");

    // --- 2. uncorrected spikes, speculative: emit now, retract if wrong --
    let spike = market.uncorrected_spike_query(30);
    let mut cfg = EngineConfig::with_k(Duration::new(40));
    cfg.policy = DisorderPolicy::Speculative;
    let mut engine = NativeEngine::new(spike.clone(), cfg);
    let (mut fired, mut retracted) = (0usize, 0usize);
    for item in &stream {
        for out in engine.ingest(item) {
            match out.kind {
                OutputKind::Insert => fired += 1,
                OutputKind::Retract => retracted += 1,
            }
        }
    }
    for out in engine.finish() {
        if out.kind == OutputKind::Insert {
            fired += 1;
        }
    }
    println!(
        "spike alerts (speculative):  {fired} fired immediately, {retracted} retracted \
         by late corrections, {} stand",
        fired - retracted
    );

    // --- 3. same spikes, conservative + punctuations ----------------------
    let punctuated = punctuate(&stream, 500);
    let mut cfg = EngineConfig::with_k(Duration::new(40));
    cfg.policy = DisorderPolicy::Conservative;
    cfg.watermark = WatermarkSource::Both;
    let mut engine = NativeEngine::new(spike.clone(), cfg);
    let mut alerts = 0usize;
    let mut held = 0u64;
    let mut emitted = 0u64;
    for item in &punctuated {
        for out in engine.ingest(item) {
            alerts += 1;
            held += out.arrival_latency();
            emitted += 1;
        }
    }
    alerts += engine.finish().len();
    let mean_hold = if emitted == 0 {
        0.0
    } else {
        held as f64 / emitted as f64
    };
    println!(
        "spike alerts (conservative): {alerts} confirmed alerts, held {mean_hold:.1} \
         arrivals on average until their negation region sealed"
    );

    // --- 4. same spikes, adaptive slack: learn the lateness bound ---------
    let mut cfg = EngineConfig::with_k(Duration::new(40));
    cfg.policy = DisorderPolicy::AdaptiveSlack { accuracy: 90 };
    let mut engine = NativeEngine::new(spike, cfg);
    let mut alerts = 0usize;
    for item in &stream {
        alerts += engine.ingest(item).len();
    }
    alerts += engine.finish().len();
    println!(
        "spike alerts (adaptive):     {alerts} alerts held behind a learned slack \
         bound of {} ticks",
        engine.slack_bound().map_or(0, |d| d.ticks())
    );
    println!(
        "\nengine state stayed at {} events ({} purge passes)",
        engine.state_size(),
        engine.stats().purge_runs
    );
}
