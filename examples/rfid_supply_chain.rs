//! RFID supply-chain monitoring — the paper's lead application.
//!
//! Items are SHIPPED, should be SCANNED at a checkpoint, then RECEIVED.
//! The query finds items that skipped the checkpoint (a negation pattern
//! correlated on the tag id). Reader networks deliver events out of
//! order, so the run compares the classic in-order engine against the
//! native out-of-order engine on the same disordered feed.
//!
//! ```sh
//! cargo run --example rfid_supply_chain
//! ```

use sequin::engine::{make_engine, EngineConfig, Strategy};
use sequin::metrics::{compare_outputs, run_engine};
use sequin::netsim::{measure_disorder, DelayModel, Network, Source};
use sequin::types::{sort_by_timestamp, Duration, StreamItem};
use sequin::workload::Rfid;

fn main() {
    let rfid = Rfid::new();
    let (history, truly_skipped) = rfid.generate(2_000, 0.07, 2024);
    println!(
        "generated {} supply-chain events for 2000 tagged items ({truly_skipped} skipped the checkpoint scan)",
        history.len()
    );

    // two reader gateways with different link quality feed one engine
    let mid = history.len() / 2;
    let net = Network::new(
        vec![
            Source::new(
                history[..mid].to_vec(),
                DelayModel::Uniform { lo: 0, hi: 15 },
            ),
            Source::new(
                history[mid..].to_vec(),
                DelayModel::Exponential { mean: 10.0 },
            ),
        ],
        7,
    );
    let stream = net.deliver();
    let disorder = measure_disorder(&stream);
    println!(
        "network disorder: {:.1}% late, max lateness {}, mean {:.1}\n",
        disorder.late_fraction * 100.0,
        disorder.max_lateness,
        disorder.mean_lateness
    );

    let query = rfid.skipped_scan_query(100);
    let k = disorder.max_lateness.ticks().max(1);
    let config = EngineConfig::with_k(Duration::new(k));

    // ground truth: the in-order engine over the timestamp-sorted history
    let mut sorted = history.clone();
    sort_by_timestamp(&mut sorted);
    let oracle_stream: Vec<StreamItem> = sorted.into_iter().map(StreamItem::Event).collect();
    let mut oracle_engine = make_engine(Strategy::Native, query.clone(), config);
    let oracle = run_engine(oracle_engine.as_mut(), &oracle_stream, 64);

    for strategy in [Strategy::InOrder, Strategy::Native] {
        let mut engine = make_engine(strategy, query.clone(), config);
        let report = run_engine(engine.as_mut(), &stream, 64);
        let acc = compare_outputs(&report.outputs, &oracle.outputs);
        println!(
            "{strategy:>16}: {:>4} alerts | precision {:.2} recall {:.2} | {:>7.0} ev/s | peak state {}",
            report.net_matches(),
            acc.precision(),
            acc.recall(),
            report.throughput_eps,
            report.peak_state
        );
    }
    println!(
        "\noracle (sorted feed) alerts: {}  — native matches it on the disordered feed;\n\
         the in-order engine raises wrong alerts and misses real ones.",
        oracle.net_matches()
    );
}
